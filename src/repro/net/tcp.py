"""A packet-level TCP (Reno with SACK-based loss recovery) implementation.

This models the pieces of TCP whose *dynamics* the CellBricks evaluation
depends on (§6.2): the three-way handshake a new MPTCP subflow pays after a
bTelco switch, slow-start ramp-up (the source of the post-handover
throughput spike in Fig 8/9), congestion avoidance, SACK-based fast
recovery (what deployed Linux stacks — the paper's v4.19 kernel — actually
run), and exponentially backed-off retransmission timeouts (what stalls
the *baseline* TCP flow when the radio blanks during a handover).

Data is modeled as byte *counts*, not byte contents — applications frame
their own messages on top — but sequence-number bookkeeping, cumulative +
selective ACKs, out-of-order reassembly, and per-segment metadata (used by
MPTCP's DSS mapping) are all real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .node import Host
from .packet import (
    IP_HEADER,
    PROTO_TCP,
    TCP_HEADER,
    TCP_TIMESTAMP_OPTION,
    FlowKey,
    Packet,
)
from .sim import Simulator, Timer

DEFAULT_MSS = 1400
HEADER_OVERHEAD = IP_HEADER + TCP_HEADER + TCP_TIMESTAMP_OPTION

# Flags
SYN = 0x02
ACK = 0x10
FIN = 0x01
RST = 0x04

MIN_RTO = 0.2     # Linux-style 200 ms floor
MAX_RTO = 60.0
INITIAL_RTO = 1.0
DUPACK_THRESHOLD = 3
INITIAL_CWND_SEGMENTS = 10  # RFC 6928 IW10, as deployed Linux kernels use


@dataclass(slots=True)
class Segment:
    """A TCP segment (header fields + payload byte count)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload_len: int = 0
    meta: object = None          # MPTCP DSS mapping / MP option / app tag
    sack: tuple = ()             # ((seq, len), ...) selective-ack ranges
    sent_at: float = 0.0

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)


@dataclass(slots=True)
class _SentChunk:
    seq: int
    length: int
    sent_at: float
    end: int = 0                 # seq + length, precomputed (hot path)
    retransmitted: bool = False
    sacked: bool = False
    lost: bool = False
    meta: object = None
    is_fin: bool = False

    def __post_init__(self):
        self.end = self.seq + self.length


@dataclass(slots=True)
class TcpStats:
    """Per-connection counters surfaced to benchmarks and tests."""

    bytes_sent: int = 0
    bytes_acked: int = 0
    bytes_received: int = 0
    segments_sent: int = 0
    segments_received: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    fast_retransmits: int = 0
    rtt_samples: int = 0
    srtt: float = 0.0


class TcpConnection:
    """One direction-agnostic TCP endpoint.

    Lifecycle::

        conn = TcpConnection(host, remote_ip, remote_port)
        conn.on_established = ...
        conn.connect()          # active open (3WHS)
        conn.send(100_000)      # queue bytes
        conn.close()            # FIN after the queue drains

    Passive opens are created by :class:`TcpListener`.  ``on_data`` fires
    with ``(nbytes, meta)`` for each in-order segment delivered.
    """

    def __init__(self, host: Host, remote_ip: str, remote_port: int,
                 local_port: int = 0, mss: int = DEFAULT_MSS,
                 receive_window: int = 1024 * 1024):
        self.sim: Simulator = host.sim
        self.host = host
        self.local_ip = host.address
        self.local_port = local_port or host.allocate_port()
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.mss = mss
        self.receive_window = receive_window

        self.state = "CLOSED"
        self.stats = TcpStats()

        # Sender state
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_CWND_SEGMENTS * mss
        self.ssthresh = receive_window
        self.peer_window = receive_window
        self.in_recovery = False
        self.recover = 0
        self.rto = INITIAL_RTO
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self._send_queue: list[tuple[int, object]] = []  # (remaining, meta)
        self._queued_bytes = 0
        self._sent_chunks: list[_SentChunk] = []
        self._pipe = 0  # incrementally-maintained bytes_in_flight
        self._fin_queued = False
        self._fin_sent = False
        self._rtx_timer = Timer(self.sim, self._on_rto)

        # Receiver state
        self.rcv_nxt = 0
        self._reorder: dict[int, tuple[int, object, bool]] = {}
        self._peer_fin_seq: Optional[int] = None

        # Callbacks
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[int, object], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_fail: Optional[Callable[[str], None]] = None
        self.on_chunks_acked: Optional[Callable[[list], None]] = None

        self._flow_key: Optional[FlowKey] = None
        # Optional MPTCP option object carried on our SYN (MP_CAPABLE /
        # MP_JOIN); TcpListener copies the peer's onto accepted connections.
        self.syn_meta: object = None
        self.syn_retries = 0
        self.max_syn_retries = 6
        self.connect_started_at: Optional[float] = None
        self.established_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Active open: send a SYN and register the flow."""
        if self.state != "CLOSED":
            raise RuntimeError(f"connect() in state {self.state}")
        self.local_ip = self.host.address
        self._register()
        self.state = "SYN_SENT"
        self.connect_started_at = self.sim.now
        self._send_control(SYN, seq=self.snd_nxt)
        self.snd_nxt += 1  # SYN consumes a sequence number
        self._rtx_timer.start(self.rto)

    def _accept_from(self, packet: Packet, segment: Segment) -> None:
        """Passive open (invoked by TcpListener on an incoming SYN)."""
        self.remote_ip = packet.src
        self.remote_port = segment.src_port
        self.local_ip = self.host.address
        self._register()
        self.state = "SYN_RCVD"
        self.rcv_nxt = segment.seq + 1
        self._send_control(SYN | ACK, seq=self.snd_nxt)
        self.snd_nxt += 1
        self._rtx_timer.start(self.rto)

    def _register(self) -> None:
        self._flow_key = FlowKey(self.local_ip, self.local_port,
                                 self.remote_ip, self.remote_port)
        self.host.register_flow(self._flow_key, self)

    def _unregister(self) -> None:
        if self._flow_key is not None:
            self.host.unregister_flow(self._flow_key)
            self._flow_key = None

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately (no FIN exchange)."""
        self._rtx_timer.stop()
        self._unregister()
        if self.state not in ("CLOSED", "DONE"):
            self.state = "DONE"
            if self.on_fail is not None:
                self.on_fail(reason)

    def close(self) -> None:
        """Graceful close: FIN once all queued data has been sent."""
        if self.state in ("CLOSED", "DONE", "FIN_WAIT", "CLOSING"):
            return
        self._fin_queued = True
        self._try_transmit()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, nbytes: int, meta: object = None) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self._fin_queued:
            raise RuntimeError("cannot send after close()")
        self._send_queue.append((nbytes, meta))
        self._queued_bytes += nbytes
        if self.state == "ESTABLISHED":
            self._try_transmit()

    @property
    def bytes_in_flight(self) -> int:
        """SACK 'pipe': bytes believed to be in the network."""
        return self._pipe

    @staticmethod
    def _counted(chunk: _SentChunk) -> bool:
        """Whether a chunk contributes to the pipe estimate."""
        return not chunk.sacked and (not chunk.lost or chunk.retransmitted)

    def _recompute_pipe(self) -> int:
        """O(n) pipe recomputation (RTO path and test invariants)."""
        self._pipe = sum(c.length for c in self._sent_chunks
                         if self._counted(c))
        return self._pipe

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def take_unsent_ranges(self) -> list[tuple[int, object]]:
        """Drain and return the not-yet-transmitted queue.

        MPTCP calls this when abandoning a dead subflow so queued data can
        be re-injected on the replacement subflow.
        """
        queue = self._send_queue
        self._send_queue = []
        self._queued_bytes = 0
        return queue

    def unacked_chunks(self) -> list:
        """Snapshot of sent-but-unacknowledged chunks (for re-injection)."""
        return [c for c in self._sent_chunks if not c.is_fin]

    def _window(self) -> int:
        return min(self.cwnd, self.peer_window)

    def _try_transmit(self) -> None:
        if self.state != "ESTABLISHED":
            return
        budget = self._window() - self.bytes_in_flight
        # Retransmissions of known-lost chunks take priority.
        for chunk in self._sent_chunks:
            if budget < chunk.length:
                break
            if chunk.lost and not chunk.retransmitted:
                self._retransmit_chunk(chunk)
                budget -= chunk.length
        while self._send_queue and budget >= min(self.mss,
                                                 self._send_queue[0][0]):
            remaining, meta = self._send_queue[0]
            length = min(self.mss, remaining, budget)
            if length <= 0:
                break
            self._emit_data(self.snd_nxt, length, meta, chunk=None)
            self.snd_nxt += length
            budget -= length
            if length == remaining:
                self._send_queue.pop(0)
            else:
                # Splitting a queued range: metas that carry a stream offset
                # (MPTCP DSS mappings) advance past the part just sent.
                rest_meta = meta.advance(length) if hasattr(meta, "advance") \
                    else meta
                self._send_queue[0] = (remaining - length, rest_meta)
            self._queued_bytes -= length
        if self._fin_queued and not self._fin_sent and not self._send_queue:
            self._emit_fin()

    def _emit_data(self, seq: int, length: int, meta: object,
                   chunk: Optional[_SentChunk]) -> None:
        segment = Segment(self.local_port, self.remote_port, seq,
                          self.rcv_nxt, ACK, payload_len=length, meta=meta,
                          sent_at=self.sim.now)
        packet = Packet(src=self.local_ip, dst=self.remote_ip,
                        protocol=PROTO_TCP, size=HEADER_OVERHEAD + length,
                        payload=segment)
        self.host.send_packet(packet)
        self.stats.segments_sent += 1
        self.stats.bytes_sent += length
        if chunk is None:
            self._sent_chunks.append(
                _SentChunk(seq, length, self.sim.now, meta=meta))
            self._pipe += length
        if not self._rtx_timer.armed:
            self._rtx_timer.start(self.rto)

    def _retransmit_chunk(self, chunk: _SentChunk) -> None:
        if chunk.lost and not chunk.retransmitted and not chunk.sacked:
            self._pipe += chunk.length
        chunk.retransmitted = True
        chunk.sent_at = self.sim.now
        self.stats.retransmissions += 1
        if chunk.is_fin:
            self._send_control(FIN | ACK, seq=chunk.seq)
        else:
            self._emit_data(chunk.seq, chunk.length, chunk.meta, chunk=chunk)

    def _emit_fin(self) -> None:
        self._fin_sent = True
        self.state = "FIN_WAIT"
        self._send_control(FIN | ACK, seq=self.snd_nxt)
        self._sent_chunks.append(_SentChunk(self.snd_nxt, 1, self.sim.now,
                                            is_fin=True))
        self._pipe += 1
        self.snd_nxt += 1
        if not self._rtx_timer.armed:
            self._rtx_timer.start(self.rto)

    def _send_control(self, flags: int, seq: int) -> None:
        meta = self.syn_meta if flags & SYN else None
        segment = Segment(self.local_port, self.remote_port, seq,
                          self.rcv_nxt, flags, meta=meta,
                          sent_at=self.sim.now)
        packet = Packet(src=self.local_ip, dst=self.remote_ip,
                        protocol=PROTO_TCP, size=HEADER_OVERHEAD,
                        payload=segment)
        self.host.send_packet(packet)
        self.stats.segments_sent += 1

    def _send_ack(self) -> None:
        segment = Segment(self.local_port, self.remote_port, self.snd_nxt,
                          self.rcv_nxt, ACK, sack=self._sack_ranges(),
                          sent_at=self.sim.now)
        packet = Packet(src=self.local_ip, dst=self.remote_ip,
                        protocol=PROTO_TCP, size=HEADER_OVERHEAD,
                        payload=segment)
        self.host.send_packet(packet)
        self.stats.segments_sent += 1

    def _sack_ranges(self) -> tuple:
        """Merged out-of-order ranges advertised to the peer."""
        if not self._reorder:
            return ()
        spans = sorted((seq, seq + length)
                       for seq, (length, _, _) in self._reorder.items())
        merged = [list(spans[0])]
        for start, end in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return tuple((start, end - start) for start, end in merged)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        segment: Segment = packet.payload
        self.stats.segments_received += 1
        if segment.is_rst:
            self.abort("reset by peer")
            return

        if self.state == "SYN_SENT":
            if segment.is_syn and segment.flags & ACK:
                self.rcv_nxt = segment.seq + 1
                self._establish()
                self._send_ack()
            return

        if self.state == "SYN_RCVD":
            if segment.is_syn:
                return  # duplicate SYN; our SYN-ACK rtx timer handles it
            if segment.flags & ACK and segment.ack >= self.snd_nxt:
                self._establish()
                # Fall through: the ACK may carry data.

        if self.state not in ("ESTABLISHED", "FIN_WAIT", "CLOSING"):
            return

        if segment.flags & ACK:
            self._process_ack(segment)
        if segment.payload_len > 0 or segment.is_fin:
            self._process_payload(segment)

    def _establish(self) -> None:
        self.state = "ESTABLISHED"
        self.established_at = self.sim.now
        self.snd_una = self.snd_nxt
        self._rtx_timer.stop()
        self._sent_chunks.clear()
        self._pipe = 0
        self.rto = INITIAL_RTO
        if self.connect_started_at is not None and self.srtt is None:
            self._sample_rtt(self.sim.now - self.connect_started_at)
        if self.on_established is not None:
            self.on_established()
        self._try_transmit()

    # -- ACK processing ---------------------------------------------------
    def _process_ack(self, segment: Segment) -> None:
        ack = segment.ack
        newly_acked = 0
        acked_chunks: list[_SentChunk] = []
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self.snd_una = ack
            acked_chunks = self._pop_acked_chunks(ack)
            for chunk in acked_chunks:
                if not chunk.retransmitted and not chunk.sacked:
                    self._sample_rtt(self.sim.now - chunk.sent_at)
            self.stats.bytes_acked += sum(
                c.length for c in acked_chunks if not c.is_fin)

        # Apply SACK information.
        sacked_progress = self._apply_sack(segment.sack)

        # Loss detection (SACK-based, RFC 6675 style) - only new SACK
        # information can newly qualify a chunk as lost.
        newly_lost = self._detect_losses() if segment.sack else False
        if newly_lost and not self.in_recovery:
            self._enter_recovery()

        if newly_acked:
            if self.in_recovery:
                if ack >= self.recover:
                    self._exit_recovery()
            else:
                self._grow_cwnd(newly_acked)
            if self._sent_chunks:
                self._rtx_timer.start(self.rto)
            else:
                self._rtx_timer.stop()
            if self.on_chunks_acked is not None and acked_chunks:
                self.on_chunks_acked(acked_chunks)
            if any(c.is_fin for c in acked_chunks):
                self._on_fin_acked()

        if newly_acked or sacked_progress or newly_lost:
            self._try_transmit()

    def _pop_acked_chunks(self, ack: int) -> list:
        # _sent_chunks is seq-sorted, so a cumulative ACK covers a prefix.
        chunks = self._sent_chunks
        split = 0
        while split < len(chunks) and chunks[split].end <= ack:
            split += 1
        if split == 0:
            return []
        acked = chunks[:split]
        del chunks[:split]
        for chunk in acked:
            if self._counted(chunk):
                self._pipe -= chunk.length
        return acked

    def _apply_sack(self, ranges: tuple) -> bool:
        if not ranges:
            return False
        # Both the chunk list and the SACK ranges are seq-sorted: merge
        # them with two pointers instead of an N x R scan.
        progress = False
        chunks = self._sent_chunks
        range_index = 0
        start, length = ranges[0]
        end = start + length
        for chunk in chunks:
            while chunk.seq >= end:
                range_index += 1
                if range_index >= len(ranges):
                    return progress
                start, length = ranges[range_index]
                end = start + length
            if chunk.sacked:
                continue
            if start <= chunk.seq and chunk.end <= end:
                if self._counted(chunk):
                    self._pipe -= chunk.length
                chunk.sacked = True
                chunk.lost = False
                progress = True
        return progress

    def _detect_losses(self) -> bool:
        """Mark chunks lost when DUPACK_THRESHOLD segments above them have
        been SACKed (simplified RFC 6675 rule)."""
        chunks = self._sent_chunks
        highest_sacked = 0
        for chunk in reversed(chunks):
            if chunk.sacked:
                highest_sacked = chunk.end
                break
        if not highest_sacked:
            return False
        cutoff = highest_sacked - DUPACK_THRESHOLD * self.mss
        newly = False
        for chunk in chunks:
            if chunk.end > cutoff:
                break  # seq-sorted: nothing further can qualify
            if chunk.sacked or chunk.lost:
                continue
            # Re-lost retransmissions are only re-marked after an RTO;
            # fresh transmissions are marked immediately.
            if not chunk.retransmitted:
                if not chunk.lost:
                    self._pipe -= chunk.length
                chunk.lost = True
                newly = True
        return newly

    def _grow_cwnd(self, acked_bytes: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)  # slow start (ABC)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)
        self.cwnd = min(self.cwnd, self.receive_window)

    def _enter_recovery(self) -> None:
        self.stats.fast_retransmits += 1
        self.recover = self.snd_nxt
        self.ssthresh = max(self.bytes_in_flight // 2, 2 * self.mss)
        self.cwnd = self.ssthresh
        self.in_recovery = True

    def _exit_recovery(self) -> None:
        self.in_recovery = False
        self.cwnd = self.ssthresh

    # -- timeouts ----------------------------------------------------------
    def _on_rto(self) -> None:
        if self.state == "SYN_SENT":
            self.syn_retries += 1
            if self.syn_retries > self.max_syn_retries:
                self.abort("connect timed out")
                return
            self._send_control(SYN, seq=0)
            self.rto = min(self.rto * 2, MAX_RTO)
            self._rtx_timer.start(self.rto)
            return
        if self.state == "SYN_RCVD":
            self._send_control(SYN | ACK, seq=0)
            self.rto = min(self.rto * 2, MAX_RTO)
            self._rtx_timer.start(self.rto)
            return
        if not self._sent_chunks:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.bytes_in_flight // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.rto = min(self.rto * 2, MAX_RTO)
        for chunk in self._sent_chunks:
            if not chunk.sacked:
                chunk.lost = True
                chunk.retransmitted = False
        self._recompute_pipe()
        self._try_transmit()
        self._rtx_timer.start(self.rto)

    def _sample_rtt(self, rtt: float) -> None:
        self.stats.rtt_samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.stats.srtt = self.srtt
        self.rto = min(MAX_RTO, max(MIN_RTO, self.srtt + 4 * self.rttvar))

    # -- payload processing --------------------------------------------------
    def _process_payload(self, segment: Segment) -> None:
        seq = segment.seq
        if segment.is_fin:
            self._peer_fin_seq = seq + segment.payload_len
        if segment.payload_len > 0:
            if seq + segment.payload_len <= self.rcv_nxt:
                self._send_ack()  # duplicate
                return
            if seq > self.rcv_nxt:
                self._reorder[seq] = (segment.payload_len, segment.meta,
                                      segment.is_fin)
                self._send_ack()  # dup ACK with SACK signals the hole
                return
            trim = self.rcv_nxt - seq
            meta = segment.meta
            if trim > 0 and hasattr(meta, "advance"):
                meta = meta.advance(trim)
            self._deliver(segment.payload_len - trim, meta)
            self.rcv_nxt = seq + segment.payload_len
            self._drain_reorder()
        if (self._peer_fin_seq is not None
                and self.rcv_nxt >= self._peer_fin_seq):
            self.rcv_nxt = self._peer_fin_seq + 1
            self._send_ack()
            self._on_peer_fin()
            return
        self._send_ack()

    def _drain_reorder(self) -> None:
        while True:
            match = None
            for seq in self._reorder:
                if seq <= self.rcv_nxt < seq + self._reorder[seq][0]:
                    match = seq
                    break
                if seq == self.rcv_nxt:
                    match = seq
                    break
            if match is None:
                # Also discard stale fully-covered entries.
                stale = [s for s, (length, _, _) in self._reorder.items()
                         if s + length <= self.rcv_nxt]
                for s in stale:
                    del self._reorder[s]
                return
            length, meta, is_fin = self._reorder.pop(match)
            trim = self.rcv_nxt - match
            if trim > 0 and hasattr(meta, "advance"):
                meta = meta.advance(trim)
            self._deliver(length - trim, meta)
            self.rcv_nxt = match + length
            if is_fin:
                self._peer_fin_seq = self.rcv_nxt

    def _deliver(self, nbytes: int, meta: object) -> None:
        if nbytes <= 0:
            return
        self.stats.bytes_received += nbytes
        if self.on_data is not None:
            self.on_data(nbytes, meta)

    # -- teardown -----------------------------------------------------------
    def _on_peer_fin(self) -> None:
        if self.state == "ESTABLISHED":
            # Passive close: finish sending, then FIN back.
            self.close()
        elif self.state in ("FIN_WAIT", "CLOSING"):
            self._finish()

    def _on_fin_acked(self) -> None:
        if self._peer_fin_seq is not None and self.rcv_nxt > self._peer_fin_seq:
            self._finish()
        elif self.state == "FIN_WAIT":
            self.state = "CLOSING"

    def _finish(self) -> None:
        if self.state == "DONE":
            return
        self.state = "DONE"
        self._rtx_timer.stop()
        self._unregister()
        if self.on_close is not None:
            self.on_close()


class TcpListener:
    """A passive TCP endpoint accepting connections on a port."""

    def __init__(self, host: Host, port: int,
                 on_accept: Callable[[TcpConnection], None],
                 mss: int = DEFAULT_MSS):
        self.host = host
        self.port = port
        self.on_accept = on_accept
        self.mss = mss
        host.register_listener(PROTO_TCP, port, self)
        self.accepted = 0

    def handle_packet(self, packet: Packet) -> None:
        segment: Segment = packet.payload
        if not segment.is_syn or segment.flags & ACK:
            return
        connection = TcpConnection(self.host, packet.src, segment.src_port,
                                   local_port=self.port, mss=self.mss)
        connection.syn_meta = segment.meta  # MPTCP option from the peer SYN
        self.accepted += 1
        self.on_accept(connection)
        connection._accept_from(packet, segment)

    def close(self) -> None:
        self.host.unregister_listener(PROTO_TCP, self.port)
