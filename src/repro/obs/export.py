"""Trace exporters and the Fig 7 per-leg breakdown analysis.

Three formats:

* **JSONL** — one sorted-key JSON object per span, in recording order.
  Deterministic: two identical seeded runs produce byte-identical files
  (virtual timestamps only, stable id allocation, sorted keys).
* **Chrome trace_event** — load into ``chrome://tracing`` / Perfetto;
  spans become complete ("X") events on one row per node, instants
  become "i" events.
* **text summary** — per-span-name count / total / mean table for quick
  terminal inspection.

:func:`attach_leg_breakdown` turns an attach trace into the paper's
Fig 7 decomposition: per-category processing time clipped to the root
``attach`` span's window, with transit as the exact remainder — so the
four legs sum to the end-to-end latency by construction.
"""

from __future__ import annotations

import json
from typing import Optional

# Chrome trace_event timestamps are microseconds.
_US = 1e6

#: Fig 7 leg names, in display order.  ``radio_nas_transit_ms`` includes
#: eNodeB relay processing (the paper's radio leg) and is computed as the
#: remainder, so the legs always sum exactly to ``total_ms``.
LEG_NAMES = ("ue_crypto_ms", "radio_nas_transit_ms", "btelco_verify_ms",
             "broker_verify_sign_ms")

# span.category -> leg (everything else, including "enb", lands in the
# transit remainder).
_CATEGORY_LEG = {
    "ue": "ue_crypto_ms",
    "agw": "btelco_verify_ms",
    "cloud": "broker_verify_sign_ms",
}


def spans_to_jsonl(spans) -> str:
    """One JSON object per line, sorted keys — byte-stable across runs."""
    lines = [json.dumps(span.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans, path: str) -> int:
    """Write the JSONL trace; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text.splitlines())


#: Chrome's synthetic process id — the whole sim is one "process"; rows
#: (tids) are nodes.
_CHROME_PID = 1


def chrome_thread_ids(spans) -> dict:
    """Deterministic collision-free ``node name -> tid`` mapping: nodes
    are enumerated in sorted order, so two runs over the same topology
    assign identical tids and their Chrome traces line up row-for-row."""
    return {node: tid for tid, node
            in enumerate(sorted({span.node for span in spans}), start=1)}


def spans_to_chrome(spans) -> dict:
    """Chrome ``trace_event`` JSON (open in chrome://tracing).

    One row (tid) per node, assigned by :func:`chrome_thread_ids`;
    ``M``-phase metadata events name the process and each thread so the
    viewer shows node names instead of bare integers.  The trace id
    travels in ``args`` (Chrome has no native trace grouping).
    """
    tids = chrome_thread_ids(spans)
    events = [{
        "name": "process_name", "ph": "M", "pid": _CHROME_PID, "tid": 0,
        "args": {"name": "repro-sim"},
    }]
    for node in sorted(tids):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _CHROME_PID,
            "tid": tids[node], "args": {"name": node},
        })
    for span in spans:
        base = {
            "name": span.name,
            "cat": span.category or "obs",
            "pid": _CHROME_PID,
            "tid": tids[span.node],
            "ts": round(span.start * _US, 3),
            "args": {"trace_id": span.trace_id,
                     "span_id": span.span_id,
                     "parent_id": span.parent_id},
        }
        if span.corr_id:
            base["args"]["corr_id"] = span.corr_id
        if span.data:
            base["args"].update(span.data)
        if span.kind == "instant":
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = round((span.duration) * _US, 3)
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans, path: str) -> int:
    payload = spans_to_chrome(spans)
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def summarize(spans) -> str:
    """Per-span-name text table: count, total ms, mean ms, instants."""
    totals: dict[str, list] = {}
    for span in spans:
        entry = totals.setdefault(span.name, [0, 0.0, 0])
        if span.kind == "instant":
            entry[2] += 1
        else:
            entry[0] += 1
            entry[1] += span.duration
    lines = [f"{'span':32s} {'count':>7s} {'total ms':>10s} "
             f"{'mean ms':>9s} {'events':>7s}"]
    for name in sorted(totals):
        count, total, instants = totals[name]
        mean = total / count * 1000.0 if count else 0.0
        lines.append(f"{name:32s} {count:7d} {total * 1000.0:10.3f} "
                     f"{mean:9.4f} {instants:7d}")
    return "\n".join(lines)


def _clipped(span, start: float, end: float) -> float:
    """Span duration restricted to the [start, end] window."""
    if span.end is None:
        return 0.0
    return max(0.0, min(span.end, end) - max(span.start, start))


def attach_leg_breakdown(spans, root_name: str = "attach") -> list:
    """Per-attach leg decomposition from a recorded trace.

    Returns one dict per completed root span, each with ``total_ms``,
    the four ``LEG_NAMES`` (summing exactly to ``total_ms``), plus an
    informational ``enb_ms`` (contained inside the transit leg).
    """
    by_trace: dict[int, list] = {}
    roots: list = []
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
        if span.name == root_name and span.parent_id == 0 \
                and span.end is not None and span.status == "ok":
            roots.append(span)

    breakdowns = []
    for root in roots:
        total = root.duration
        sums = {"ue": 0.0, "agw": 0.0, "cloud": 0.0, "enb": 0.0}
        for span in by_trace[root.trace_id]:
            if span is root or span.kind == "instant":
                continue
            if span.category in sums:
                sums[span.category] += _clipped(span, root.start, root.end)
        transit = max(0.0, total - sums["ue"] - sums["agw"] - sums["cloud"])
        breakdowns.append({
            "trace_id": root.trace_id,
            "total_ms": total * 1000.0,
            "ue_crypto_ms": sums["ue"] * 1000.0,
            "radio_nas_transit_ms": transit * 1000.0,
            "btelco_verify_ms": sums["agw"] * 1000.0,
            "broker_verify_sign_ms": sums["cloud"] * 1000.0,
            "enb_ms": sums["enb"] * 1000.0,
        })
    return breakdowns


#: Migration leg names, in timeline order.  Unlike the Fig 7 legs (which
#: clip per-category processing), a handover's phases *overlap* in wall
#: time (the broker re-auth races the transport's address-loss timer), so
#: the stall is partitioned sequentially at two boundaries: re-auth done,
#: transport re-established.  The three legs sum exactly to ``total_ms``
#: by construction.
MIGRATION_LEG_NAMES = ("reauth_ms", "transport_ms", "drain_ms")

#: child spans that mark the transport re-established boundary.
_TRANSPORT_ESTABLISH = ("mptcp.subflow_establish", "quic.path_validation")


def migration_leg_breakdown(spans, root_name: str = "migration") -> list:
    """Per-switch stall decomposition from a recorded migration trace.

    Each completed ``migration`` root (opened by ``switch_to``, closed
    when the first post-switch payload byte reaches the application)
    yields ``total_ms`` partitioned into:

    * ``reauth_ms`` — detach until the broker-brokered re-attach granted
      a new bearer (the ``migration.reauth`` child span's end);
    * ``transport_ms`` — until the data path re-established (last MPTCP
      subflow join / QUIC path validation finishing inside the window);
    * ``drain_ms`` — remainder: retransmit/reinject drain of the old
      path until payload flows again.

    Boundaries are clamped monotonic, so the legs sum *exactly* to
    ``total_ms`` — the Fig 7 invariant, extended to the data path.
    """
    by_trace: dict[int, list] = {}
    roots: list = []
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
        if span.name == root_name and span.parent_id == 0 \
                and span.end is not None and span.status == "ok":
            roots.append(span)

    breakdowns = []
    for root in roots:
        t0, t3 = root.start, root.end
        reauth_end = t0
        transport_end = t0
        establish_name = ""
        for span in by_trace[root.trace_id]:
            if span is root or span.kind == "instant" or span.end is None:
                continue
            if span.name == "migration.reauth" and span.status == "ok":
                reauth_end = max(reauth_end, span.end)
            elif span.name in _TRANSPORT_ESTABLISH and span.status == "ok":
                if span.end >= transport_end:
                    transport_end = span.end
                    establish_name = span.name
        t1 = min(max(reauth_end, t0), t3)
        t2 = min(max(transport_end, t1), t3)
        breakdowns.append({
            "trace_id": root.trace_id,
            "total_ms": (t3 - t0) * 1000.0,
            "reauth_ms": (t1 - t0) * 1000.0,
            "transport_ms": (t2 - t1) * 1000.0,
            "drain_ms": (t3 - t2) * 1000.0,
            "transport": establish_name,
        })
    return breakdowns


def mean_leg_breakdown(breakdowns) -> Optional[dict]:
    """Average the per-attach breakdowns (None if there are none)."""
    if not breakdowns:
        return None
    keys = ("total_ms",) + LEG_NAMES + ("enb_ms",)
    return {key: sum(b[key] for b in breakdowns) / len(breakdowns)
            for key in keys}
