"""Trace exporters and the Fig 7 per-leg breakdown analysis.

Three formats:

* **JSONL** — one sorted-key JSON object per span, in recording order.
  Deterministic: two identical seeded runs produce byte-identical files
  (virtual timestamps only, stable id allocation, sorted keys).
* **Chrome trace_event** — load into ``chrome://tracing`` / Perfetto;
  spans become complete ("X") events on one row per node, instants
  become "i" events.
* **text summary** — per-span-name count / total / mean table for quick
  terminal inspection.

:func:`attach_leg_breakdown` turns an attach trace into the paper's
Fig 7 decomposition: per-category processing time clipped to the root
``attach`` span's window, with transit as the exact remainder — so the
four legs sum to the end-to-end latency by construction.
"""

from __future__ import annotations

import json
from typing import Optional

# Chrome trace_event timestamps are microseconds.
_US = 1e6

#: Fig 7 leg names, in display order.  ``radio_nas_transit_ms`` includes
#: eNodeB relay processing (the paper's radio leg) and is computed as the
#: remainder, so the legs always sum exactly to ``total_ms``.
LEG_NAMES = ("ue_crypto_ms", "radio_nas_transit_ms", "btelco_verify_ms",
             "broker_verify_sign_ms")

# span.category -> leg (everything else, including "enb", lands in the
# transit remainder).
_CATEGORY_LEG = {
    "ue": "ue_crypto_ms",
    "agw": "btelco_verify_ms",
    "cloud": "broker_verify_sign_ms",
}


def spans_to_jsonl(spans) -> str:
    """One JSON object per line, sorted keys — byte-stable across runs."""
    lines = [json.dumps(span.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans, path: str) -> int:
    """Write the JSONL trace; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w") as handle:
        handle.write(text)
    return len(text.splitlines())


def spans_to_chrome(spans) -> dict:
    """Chrome ``trace_event`` JSON (open in chrome://tracing)."""
    events = []
    for span in spans:
        base = {
            "name": span.name,
            "cat": span.category or "obs",
            "pid": span.trace_id,
            "tid": span.node,
            "ts": round(span.start * _US, 3),
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id},
        }
        if span.corr_id:
            base["args"]["corr_id"] = span.corr_id
        if span.data:
            base["args"].update(span.data)
        if span.kind == "instant":
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = round((span.duration) * _US, 3)
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans, path: str) -> int:
    payload = spans_to_chrome(spans)
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def summarize(spans) -> str:
    """Per-span-name text table: count, total ms, mean ms, instants."""
    totals: dict[str, list] = {}
    for span in spans:
        entry = totals.setdefault(span.name, [0, 0.0, 0])
        if span.kind == "instant":
            entry[2] += 1
        else:
            entry[0] += 1
            entry[1] += span.duration
    lines = [f"{'span':32s} {'count':>7s} {'total ms':>10s} "
             f"{'mean ms':>9s} {'events':>7s}"]
    for name in sorted(totals):
        count, total, instants = totals[name]
        mean = total / count * 1000.0 if count else 0.0
        lines.append(f"{name:32s} {count:7d} {total * 1000.0:10.3f} "
                     f"{mean:9.4f} {instants:7d}")
    return "\n".join(lines)


def _clipped(span, start: float, end: float) -> float:
    """Span duration restricted to the [start, end] window."""
    if span.end is None:
        return 0.0
    return max(0.0, min(span.end, end) - max(span.start, start))


def attach_leg_breakdown(spans, root_name: str = "attach") -> list:
    """Per-attach leg decomposition from a recorded trace.

    Returns one dict per completed root span, each with ``total_ms``,
    the four ``LEG_NAMES`` (summing exactly to ``total_ms``), plus an
    informational ``enb_ms`` (contained inside the transit leg).
    """
    by_trace: dict[int, list] = {}
    roots: list = []
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
        if span.name == root_name and span.parent_id == 0 \
                and span.end is not None and span.status == "ok":
            roots.append(span)

    breakdowns = []
    for root in roots:
        total = root.duration
        sums = {"ue": 0.0, "agw": 0.0, "cloud": 0.0, "enb": 0.0}
        for span in by_trace[root.trace_id]:
            if span is root or span.kind == "instant":
                continue
            if span.category in sums:
                sums[span.category] += _clipped(span, root.start, root.end)
        transit = max(0.0, total - sums["ue"] - sums["agw"] - sums["cloud"])
        breakdowns.append({
            "trace_id": root.trace_id,
            "total_ms": total * 1000.0,
            "ue_crypto_ms": sums["ue"] * 1000.0,
            "radio_nas_transit_ms": transit * 1000.0,
            "btelco_verify_ms": sums["agw"] * 1000.0,
            "broker_verify_sign_ms": sums["cloud"] * 1000.0,
            "enb_ms": sums["enb"] * 1000.0,
        })
    return breakdowns


def mean_leg_breakdown(breakdowns) -> Optional[dict]:
    """Average the per-attach breakdowns (None if there are none)."""
    if not breakdowns:
        return None
    keys = ("total_ms",) + LEG_NAMES + ("enb_ms",)
    return {key: sum(b[key] for b in breakdowns) / len(breakdowns)
            for key in keys}
