"""Span-based tracing on the simulator clock.

A :class:`Span` is a named interval of *virtual* time attributed to one
node (``sap.broker_verify`` at ``brokerd``); spans form trees via
``(trace_id, parent_id)`` links that ride the signaling layer's existing
correlation machinery, so one attach yields a causally-linked tree across
UE → eNodeB → AGW → brokerd.  Instants (zero-length spans) annotate point
events: retransmissions, dedup-cache replays, chaos faults, MPTCP subflow
changes.

The tracer is *passive*: it never schedules simulator events, never draws
randomness, and all timestamps are passed in by the instrumentation
points — so enabling tracing cannot perturb a seeded run, and two
identical runs produce byte-identical traces.  Memory is bounded by a
ring buffer (``capacity`` spans; the oldest are dropped and counted).

Instrumentation is zero-cost when disabled: components look up
``sim.obs`` with ``getattr`` and skip every recording path when no
:class:`Obs` has been installed (the default).
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from typing import Optional

from .metrics import MetricsRegistry

KIND_SPAN = "span"
KIND_INSTANT = "instant"


class Span:
    """One named interval (or instant) of virtual time at one node."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "category", "start", "end", "kind", "status", "corr_id",
                 "data")

    def __init__(self, trace_id: int, span_id: int, parent_id: int,
                 name: str, node: str, category: str, start: float,
                 end: Optional[float], kind: str = KIND_SPAN,
                 corr_id: int = 0, data: Optional[dict] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.category = category
        self.start = start
        self.end = end
        self.kind = kind
        self.status = "ok"
        self.corr_id = corr_id
        self.data = data

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def context(self) -> tuple:
        """The ``(trace_id, span_id)`` pair children parent under."""
        return (self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        """Deterministic wire form (used by the JSONL exporter)."""
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "category": self.category,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "kind": self.kind,
            "status": self.status,
        }
        if self.corr_id:
            out["corr_id"] = self.corr_id
        if self.data:
            out["data"] = self.data
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name} t={self.trace_id} s={self.span_id} "
                f"[{self.start:.6f},{self.end}]>")


class Tracer:
    """Ring-buffered span recorder with deterministic id allocation."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.spans_recorded = 0
        self.spans_dropped = 0

    # -- recording --------------------------------------------------------
    def _record(self, span: Span) -> Span:
        if len(self._spans) == self.capacity:
            self.spans_dropped += 1
        self._spans.append(span)
        self.spans_recorded += 1
        return span

    def start_trace(self, name: str, node: str, category: str,
                    start: float, ctx: Optional[tuple] = None) -> Span:
        """Open a new root span under a fresh trace id (ends later via
        :meth:`finish` — e.g. the UE's whole-attach span).  With ``ctx``
        (a parent span's ``(trace_id, span_id)``) the open span joins
        that trace as a child instead — used when an attach runs *inside*
        a mobility switch, so the re-auth leg nests under the migration
        root rather than starting a trace of its own."""
        if ctx is not None:
            trace_id, parent_id = ctx
        else:
            trace_id, parent_id = next(self._trace_ids), 0
        return self._record(Span(
            trace_id=trace_id, span_id=next(self._span_ids),
            parent_id=parent_id, name=name, node=node, category=category,
            start=start, end=None))

    def begin(self, name: str, node: str, category: str, start: float,
              end: float, trace_id: int = 0, parent_id: int = 0,
              corr_id: int = 0) -> Span:
        """Record a span whose interval is already known (the scheduled
        processing window of a signaling handler).  A zero ``trace_id``
        roots a fresh trace."""
        if trace_id == 0:
            trace_id = next(self._trace_ids)
            parent_id = 0
        return self._record(Span(
            trace_id=trace_id, span_id=next(self._span_ids),
            parent_id=parent_id, name=name, node=node, category=category,
            start=start, end=end, corr_id=corr_id))

    def finish(self, span: Span, end: float, status: str = "ok") -> None:
        span.end = end
        span.status = status

    def instant(self, name: str, node: str, at: float, trace_id: int = 0,
                parent_id: int = 0, category: str = "",
                data: Optional[dict] = None) -> Span:
        """Record a point event (retransmission, dedup replay, fault)."""
        return self._record(Span(
            trace_id=trace_id, span_id=next(self._span_ids),
            parent_id=parent_id, name=name, node=node, category=category,
            start=at, end=at, kind=KIND_INSTANT, data=data))

    @contextmanager
    def span(self, name: str, node: str, now: float, category: str = "",
             corr_id: int = 0, ctx: Optional[tuple] = None):
        """Context-manager form for inline (non-scheduled) code paths::

            with tracer.span("sap.broker_verify", node, sim.now,
                             corr_id=corr_id):
                ...

        Virtual time does not advance inside a ``with`` block, so the
        span records causality (and annotations), not duration.
        """
        trace_id, parent_id = ctx if ctx is not None else (0, 0)
        span = self.begin(name, node, category, start=now, end=now,
                          trace_id=trace_id, parent_id=parent_id,
                          corr_id=corr_id)
        try:
            yield span
        finally:
            span.end = now

    # -- access -----------------------------------------------------------
    def spans(self) -> list:
        return list(self._spans)

    def traces(self) -> dict:
        """Spans grouped by trace id (insertion-ordered within a trace)."""
        grouped: dict[int, list] = {}
        for span in self._spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self._spans.clear()


class Obs:
    """The installable telemetry handle: a tracer plus a fleet registry.

    ``Obs()`` is tracing-enabled by default; ``Obs(tracing=False)`` keeps
    only the metrics side.  Install on a simulator with :func:`install`;
    components discover it via ``getattr(sim, "obs", None)`` so an
    uninstrumented run pays a single attribute miss per hot-path check
    and records nothing.
    """

    def __init__(self, tracing: bool = True, trace_capacity: int = 65536):
        self.tracing = tracing
        self.tracer = Tracer(capacity=trace_capacity)
        #: registry for harness-level metrics (per-leg histograms etc.);
        #: node metrics live on each node and are merged on demand.
        self.metrics = MetricsRegistry(node="obs")
        #: open ``migration`` root spans keyed by data-path UE host name.
        #: :class:`~repro.core.mobility.MobilityManager` opens them on
        #: ``switch_to``; MPTCP/QUIC endpoints parent their re-establish
        #: spans under the entry for ``self.host.name``; the app layer
        #: (``repro.apps.transport``) closes the root when the first
        #: post-switch payload byte is delivered.
        self.active_migrations: dict = {}


def install(sim, obs: Optional[Obs] = None) -> Obs:
    """Attach an :class:`Obs` to ``sim`` (creating one if not given) so
    every component running on that simulator records into it."""
    if obs is None:
        obs = Obs()
    sim.obs = obs
    return obs


def get(sim) -> Optional[Obs]:
    """The simulator's installed telemetry handle, or None."""
    return getattr(sim, "obs", None)
