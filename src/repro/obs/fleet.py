"""Fleet-wide KPI aggregation on the simulator clock.

A :class:`KpiCollector` is a thin periodic sampler: every ``interval``
virtual seconds it calls each registered *probe* (a plain callable
returning a flat ``{key: number}`` dict), turns cumulative counter
probes into **windowed deltas and per-second rates**, samples gauge
probes as instantaneous levels, and appends one row to a
:class:`FleetKpiStore`.

Design constraints (megaload-safe):

* **Sim clock only** — sampling is a scheduled simulator event; no wall
  time is ever read, so a collected run stays byte-identical to the
  seeded baseline and two collected runs produce byte-identical KPI
  JSON.
* **Allocation-light** — one shallow dict per probe per window, no
  per-UE state; probes read counters the workload already maintains.
* **Passive** — probes must not mutate workload state; the collector
  draws no randomness and sends no messages.

The store renders three ways: deterministic sorted-key JSON (the CI
artifact), a terminal dashboard built on
:mod:`repro.analysis.textplot`, and a dependency-free static HTML page.
"""

from __future__ import annotations

import json
from typing import Callable, Optional


class KpiCollector:
    """Periodic sim-clock sampler feeding a :class:`FleetKpiStore`.

    Probes come in two flavors:

    * ``add_counter_probe(name, fn)`` — ``fn()`` returns *cumulative*
      counts; the collector records per-window deltas (``<key>``) and
      per-second rates (``<key>_per_s``).
    * ``add_gauge_probe(name, fn)`` — ``fn()`` returns instantaneous
      levels, recorded as-is.

    Keys are namespaced ``<probe>.<key>`` in the emitted row.
    """

    def __init__(self, sim, store: "FleetKpiStore",
                 interval: float = 1.0,
                 horizon: Optional[float] = None):
        self.sim = sim
        self.store = store
        self.interval = interval
        #: stop sampling past this sim time (long-tail cleanup events —
        #: session-TTL sweeps — would otherwise stretch the row set over
        #: hours of idle virtual time).
        self.horizon = horizon
        self._counter_probes: list = []   # (name, fn)
        self._gauge_probes: list = []     # (name, fn)
        self._last: dict = {}             # probe name -> last cumulative
        self._event = None
        self._last_sample_at: Optional[float] = None
        self.samples = 0

    # -- wiring -----------------------------------------------------------
    def add_counter_probe(self, name: str,
                          fn: Callable[[], dict]) -> None:
        self._counter_probes.append((name, fn))

    def add_gauge_probe(self, name: str, fn: Callable[[], dict]) -> None:
        self._gauge_probes.append((name, fn))

    def add_latency_gauge(self, name: str,
                          values_fn: Callable[[], "list"],
                          qs: tuple = (50.0, 99.0)) -> None:
        """Gauge probe over a growing latency series (ms): sample count,
        mean, and the requested percentiles each window.  ``values_fn``
        returns the cumulative series; an empty series records only the
        count so JSON stays deterministic before first data."""
        from repro.analysis.stats import mean, percentile

        def probe() -> dict:
            values = values_fn()
            if not values:
                return {"count": 0}
            out = {"count": len(values),
                   "mean_ms": round(mean(values), 4)}
            for q in qs:
                out[f"p{int(q)}_ms"] = round(percentile(values, q), 4)
            return out

        self.add_gauge_probe(name, probe)

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Baseline every counter probe now and begin periodic sampling."""
        for name, fn in self._counter_probes:
            self._last[name] = dict(fn())
        self._last_sample_at = self.sim.now
        self._event = self.sim.schedule(self.interval, self._tick)

    def stop(self, final_sample: bool = True) -> None:
        """Cancel the periodic event; optionally flush a last partial
        window (how a run's tail makes it into the store)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if final_sample and self._last_sample_at is not None \
                and self.sim.now > self._last_sample_at \
                and (self.horizon is None or self.sim.now <= self.horizon):
            self._sample()

    def _tick(self) -> None:
        self._sample()
        # Daemon-like: re-arm only while the workload itself still has
        # live events queued, so an unbounded ``sim.run()`` (the chaos
        # harness) still terminates once the drill drains — and never
        # past the horizon.
        if self.sim.pending() > 0 and (
                self.horizon is None
                or self.sim.now + self.interval <= self.horizon):
            self._event = self.sim.schedule(self.interval, self._tick)
        else:
            self._event = None

    # -- sampling ---------------------------------------------------------
    def _sample(self) -> None:
        now = self.sim.now
        window = now - (self._last_sample_at
                        if self._last_sample_at is not None else now)
        row = {"t": round(now, 9), "window_s": round(window, 9)}
        for name, fn in self._counter_probes:
            current = dict(fn())
            last = self._last.get(name, {})
            for key in current:
                delta = current[key] - last.get(key, 0)
                row[f"{name}.{key}"] = round(delta, 9)
                if window > 0:
                    row[f"{name}.{key}_per_s"] = round(delta / window, 6)
            self._last[name] = current
        for name, fn in self._gauge_probes:
            for key, value in fn().items():
                row[f"{name}.{key}"] = round(value, 9)
        self._last_sample_at = now
        self.samples += 1
        self.store.record(row)


class FleetKpiStore:
    """Windowed KPI rows plus render paths (JSON / terminal / HTML)."""

    def __init__(self, name: str = "fleet"):
        self.name = name
        self.rows: list = []

    def record(self, row: dict) -> None:
        self.rows.append(row)

    # -- access -----------------------------------------------------------
    def keys(self) -> list:
        """All KPI keys seen across rows, sorted (minus the time axis)."""
        seen: set = set()
        for row in self.rows:
            seen.update(row)
        seen.discard("t")
        seen.discard("window_s")
        return sorted(seen)

    def series(self, key: str) -> list:
        """The per-window values for one KPI (0 where a row lacks it)."""
        return [row.get(key, 0) for row in self.rows]

    def latest(self) -> dict:
        return self.rows[-1] if self.rows else {}

    def summary(self) -> dict:
        """Deterministic per-key min/max/mean over all windows."""
        out = {}
        for key in self.keys():
            values = self.series(key)
            out[key] = {
                "min": round(min(values), 6),
                "max": round(max(values), 6),
                "mean": round(sum(values) / len(values), 6),
            }
        return out

    # -- renderers --------------------------------------------------------
    def to_json(self) -> str:
        """Sorted-key JSON — byte-identical across identical seeded runs
        (every value in a row derives from the sim clock or sim state)."""
        payload = {"name": self.name, "windows": len(self.rows),
                   "rows": self.rows, "summary": self.summary()}
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write_json(self, path: str) -> int:
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return len(self.rows)

    def dashboard(self, keys: Optional[list] = None,
                  width: int = 48) -> str:
        """Terminal dashboard: one sparkline row per KPI, latest value
        and min/max annotated.  ``keys`` selects/orders the KPIs (default
        all, sorted)."""
        from repro.analysis.textplot import sparkline

        if keys is None:
            keys = self.keys()
        label_w = max((len(k) for k in keys), default=0)
        lines = [f"fleet KPIs · {self.name} · {len(self.rows)} windows"]
        for key in keys:
            values = self.series(key)
            if not values:
                continue
            tail = values[-width:]
            lines.append(
                f"{key:{label_w}s} {sparkline(tail):{width}s} "
                f"last={values[-1]:.2f} min={min(values):.2f} "
                f"max={max(values):.2f}")
        return "\n".join(lines)

    def to_html(self, title: Optional[str] = None) -> str:
        """Static dependency-free HTML: an inline-SVG strip chart per
        KPI plus the summary table.  Deterministic output."""
        title = title or f"fleet KPIs — {self.name}"
        parts = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
                 f"<title>{title}</title>",
                 "<style>body{font-family:monospace;background:#111;"
                 "color:#ddd;margin:2em}h1{font-size:1.2em}"
                 ".kpi{margin:0.6em 0}.kpi b{display:inline-block;"
                 "min-width:28em}svg{vertical-align:middle;"
                 "background:#1b1b1b}td,th{padding:0 0.8em;"
                 "text-align:right}th{color:#9cf}</style></head><body>",
                 f"<h1>{title}</h1>",
                 f"<p>{len(self.rows)} windows</p>"]
        for key in self.keys():
            values = self.series(key)
            parts.append(f"<div class='kpi'><b>{key}</b> "
                         f"{_svg_strip(values)} "
                         f"last={values[-1]:.2f}</div>")
        parts.append("<table><tr><th>kpi</th><th>min</th><th>max</th>"
                     "<th>mean</th></tr>")
        for key, stats in self.summary().items():
            parts.append(f"<tr><td>{key}</td><td>{stats['min']:.2f}</td>"
                         f"<td>{stats['max']:.2f}</td>"
                         f"<td>{stats['mean']:.2f}</td></tr>")
        parts.append("</table></body></html>")
        return "\n".join(parts)

    def write_html(self, path: str, title: Optional[str] = None) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_html(title=title))


def _svg_strip(values, width: int = 240, height: int = 28) -> str:
    """A tiny inline-SVG polyline for one KPI series."""
    if not values:
        return "<svg width='240' height='28'></svg>"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = width / max(n - 1, 1)
    points = " ".join(
        f"{round(i * step, 1)},"
        f"{round(height - 2 - (v - lo) / span * (height - 4), 1)}"
        for i, v in enumerate(values))
    return (f"<svg width='{width}' height='{height}'>"
            f"<polyline fill='none' stroke='#6cf' stroke-width='1' "
            f"points='{points}'/></svg>")


def metrics_registry_probe(registry) -> Callable[[], dict]:
    """A counter probe over a :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot — every counter and histogram count in the registry becomes
    a windowed-delta KPI."""
    def probe() -> dict:
        out = {}
        for key, value in registry.snapshot().items():
            if isinstance(value, (int, float)):
                out[key] = value
            elif isinstance(value, dict) and "count" in value:
                out[f"{key}.count"] = value["count"]
        return out
    return probe
