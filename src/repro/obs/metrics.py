"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Every :class:`~repro.lte.signaling.SignalingNode` owns one
:class:`MetricsRegistry`; fleet-wide views are produced by *merging*
registries (:meth:`MetricsRegistry.merged`), never by sharing mutable
state between nodes.  All state is bounded: counters and gauges are one
number each, histograms have a fixed bucket layout chosen at creation.

Instrumented components keep their familiar ``self.some_counter += 1``
attribute style via :class:`CounterAttr`, a descriptor that stores the
value in the owning object's registry — so the registry is the single
source of truth while every legacy accessor (``reliable_stats()``,
``stats()`` and friends) keeps working as a thin view.

Determinism: registries never read the wall clock and snapshots are
emitted in sorted order, so two identical seeded runs produce identical
snapshots byte for byte.
"""

from __future__ import annotations

from typing import Optional

# Fixed default layout for latency histograms (milliseconds): geometric
# buckets from sub-ms crypto legs up to multi-second chaos outliers.
LATENCY_BUCKETS_MS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_name(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically growing tally (resettable only by assignment)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value (queue depth, cache size, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram: bounded memory regardless of sample count.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Percentiles are estimated
    by linear interpolation inside the winning bucket (exact min/max are
    tracked so the estimate is clamped to observed values).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str, buckets=LATENCY_BUCKETS_MS,
                 labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def percentile(self, pct: float) -> float:
        """Bucket-interpolated percentile estimate (0 if no samples)."""
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
            lower = bound
        return self.max if self.max is not None else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": round(self.mean, 9),
            "p50": round(self.percentile(50.0), 9),
            "p99": round(self.percentile(99.0), 9),
        }


class CounterVec:
    """Family of counters sharing one name, split by a single label.

    Supports the :class:`collections.Counter`-style accessors the
    pre-registry code used (``vec[key] += 1``, ``dict(vec)``), so the
    migration leaves call sites untouched.
    """

    def __init__(self, registry: "MetricsRegistry", name: str, label: str):
        self._registry = registry
        self._name = name
        self._label = label

    def _counter(self, key) -> Counter:
        return self._registry.counter(self._name, **{self._label: key})

    def __getitem__(self, key) -> int:
        return self._counter(key).value

    def __setitem__(self, key, value) -> None:
        self._counter(key).value = value

    def keys(self):
        return [labels[0][1] for kind, name, labels in self._registry.keys()
                if kind == "counter" and name == self._name and labels]

    def items(self):
        return [(key, self[key]) for key in self.keys()]

    def __iter__(self):
        return iter(self.keys())


class MetricsRegistry:
    """A node-scoped set of named metrics, mergeable fleet-wide."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, node: str = ""):
        self.node = node
        self._metrics: dict[tuple, object] = {}

    # -- get-or-create ----------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict, **kwargs):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._KINDS[kind](name, labels=key[2], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, buckets=LATENCY_BUCKETS_MS,
                  **labels) -> Histogram:
        return self._get("histogram", name, labels, buckets=buckets)

    def counter_vec(self, name: str, label: str) -> CounterVec:
        return CounterVec(self, name, label)

    def keys(self):
        return list(self._metrics.keys())

    def find_histogram(self, name: str) -> Optional[Histogram]:
        return self._metrics.get(("histogram", name, ()))

    # -- aggregation ------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry (sums counters,
        takes the latest gauge value, adds histogram buckets)."""
        for (kind, name, labels), metric in sorted(other._metrics.items()):
            if kind == "counter":
                self._get(kind, name, dict(labels)).value += metric.value
            elif kind == "gauge":
                self._get(kind, name, dict(labels)).value = metric.value
            else:
                mine = self._get(kind, name, dict(labels),
                                 buckets=metric.buckets)
                if mine.buckets != metric.buckets:
                    raise ValueError(
                        f"histogram {name}: incompatible bucket layouts")
                for index, count in enumerate(metric.counts):
                    mine.counts[index] += count
                mine.count += metric.count
                mine.sum += metric.sum
                for attr in ("min", "max"):
                    theirs = getattr(metric, attr)
                    ours = getattr(mine, attr)
                    if theirs is not None and (
                            ours is None
                            or (attr == "min" and theirs < ours)
                            or (attr == "max" and theirs > ours)):
                        setattr(mine, attr, theirs)

    @classmethod
    def merged(cls, registries, node: str = "fleet") -> "MetricsRegistry":
        """One fleet-wide registry aggregating every input registry."""
        fleet = cls(node=node)
        for registry in registries:
            fleet.merge_from(registry)
        return fleet

    # -- export -----------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic (sorted) name -> value mapping.  Counters and
        gauges map to their number, histograms to a summary dict."""
        out: dict = {}
        for (kind, name, labels), metric in sorted(self._metrics.items()):
            out[_format_name(name, labels)] = metric.snapshot()
        return out


class CounterAttr:
    """Class-level descriptor binding an attribute to a registry counter.

    ``self.requests_sent += 1`` keeps working at every call site while
    the value lives in ``self.metrics`` — one source of truth, legacy
    attribute access preserved.  The owning object must create
    ``self.metrics`` (a :class:`MetricsRegistry`) before first use.
    """

    __slots__ = ("metric_name", "slot")

    def __init__(self, metric_name: str):
        self.metric_name = metric_name
        self.slot = "_ctr_" + metric_name.replace(".", "_")

    def _counter(self, obj) -> Counter:
        counter = obj.__dict__.get(self.slot)
        if counter is None:
            counter = obj.metrics.counter(self.metric_name)
            obj.__dict__[self.slot] = counter
        return counter

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._counter(obj).value

    def __set__(self, obj, value) -> None:
        self._counter(obj).value = value
