"""repro.obs — sim-clock telemetry: metrics registry, span tracing,
exporters.

Everything here runs on *virtual* time (never the wall clock), schedules
no simulator events, and draws no randomness — so instrumented seeded
runs stay bit-identical, and a run without an installed :class:`Obs`
records nothing at all (the zero-cost-when-disabled default).
"""

from .metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    CounterAttr,
    CounterVec,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Obs, Span, Tracer, get, install
from .export import (
    LEG_NAMES,
    MIGRATION_LEG_NAMES,
    attach_leg_breakdown,
    chrome_thread_ids,
    mean_leg_breakdown,
    migration_leg_breakdown,
    spans_to_chrome,
    spans_to_jsonl,
    summarize,
    write_chrome,
    write_jsonl,
)
from .fleet import FleetKpiStore, KpiCollector

__all__ = [
    "FleetKpiStore",
    "KpiCollector",
    "LATENCY_BUCKETS_MS",
    "LEG_NAMES",
    "MIGRATION_LEG_NAMES",
    "Counter",
    "CounterAttr",
    "CounterVec",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "Span",
    "Tracer",
    "attach_leg_breakdown",
    "chrome_thread_ids",
    "get",
    "install",
    "mean_leg_breakdown",
    "migration_leg_breakdown",
    "spans_to_chrome",
    "spans_to_jsonl",
    "summarize",
    "write_chrome",
    "write_jsonl",
]
