"""Geometric RAN model: cells, propagation, UE-driven cell selection.

An alternative to :mod:`repro.emulation`'s calibrated stochastic
processes: handover events and capacity traces *emerge* from geometry —
cell positions, path loss, shadowing, vehicle speed — and the UE's A3
selection logic (§4.2's "UE-driven, network-assisted handover").
"""

from .cells import Cell, Deployment, corridor_deployment
from .geometry import Point, Trajectory, Waypoint, straight_drive
from .propagation import (
    ShadowingField,
    capacity_bps,
    path_loss_db,
    rsrp_dbm,
    snr_db,
)
from .selection import (
    CellSelector,
    DriveLog,
    HandoverRecord,
    simulate_drive,
)

__all__ = [
    "Cell",
    "CellSelector",
    "Deployment",
    "DriveLog",
    "HandoverRecord",
    "Point",
    "ShadowingField",
    "Trajectory",
    "Waypoint",
    "capacity_bps",
    "corridor_deployment",
    "path_loss_db",
    "rsrp_dbm",
    "simulate_drive",
    "snr_db",
    "straight_drive",
]
