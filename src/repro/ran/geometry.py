"""Plane geometry for the RAN model: points, headings, waypoint routes."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A position in meters on the local tangent plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, other: "Point", fraction: float) -> "Point":
        """The point ``fraction`` of the way from here to ``other``."""
        return Point(self.x + (other.x - self.x) * fraction,
                     self.y + (other.y - self.y) * fraction)


@dataclass(frozen=True)
class Waypoint:
    position: Point
    #: speed while travelling *towards* this waypoint (m/s).
    speed_mps: float


class Trajectory:
    """A piecewise-linear drive: position as a function of time.

    Built from waypoints; each leg is traversed at that leg's speed.  The
    trajectory clamps at the final waypoint (the vehicle parks).
    """

    def __init__(self, start: Point, waypoints: list):
        if not waypoints:
            raise ValueError("a trajectory needs at least one waypoint")
        self.start = start
        self.waypoints = list(waypoints)
        self._legs = []  # (t_start, t_end, from, to)
        t = 0.0
        previous = start
        for waypoint in self.waypoints:
            leg_length = previous.distance_to(waypoint.position)
            if waypoint.speed_mps <= 0:
                raise ValueError("waypoint speed must be positive")
            duration = leg_length / waypoint.speed_mps
            self._legs.append((t, t + duration, previous,
                               waypoint.position))
            t += duration
            previous = waypoint.position
        self.total_duration = t

    def position_at(self, t: float) -> Point:
        if t <= 0:
            return self.start
        for t_start, t_end, origin, destination in self._legs:
            if t <= t_end:
                span = t_end - t_start
                fraction = (t - t_start) / span if span > 0 else 1.0
                return origin.towards(destination, fraction)
        return self._legs[-1][3]

    def speed_at(self, t: float) -> float:
        for index, (t_start, t_end, _, _) in enumerate(self._legs):
            if t <= t_end:
                return self.waypoints[index].speed_mps
        return 0.0


def straight_drive(length_m: float, speed_mps: float,
                   y: float = 0.0) -> Trajectory:
    """A straight line along the x axis — the canonical drive test."""
    return Trajectory(Point(0.0, y),
                      [Waypoint(Point(length_m, y), speed_mps)])
