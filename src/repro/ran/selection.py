"""UE-driven cell selection and handover decisions (§4.2).

Implements the standard A3-style trigger the paper's "UE-driven,
network-assisted handover" builds on: the UE samples RSRP periodically,
and switches when a candidate cell is better than the serving cell by a
hysteresis margin for a time-to-trigger window.  Candidates can be
restricted to the network-provided neighbor list ("smarter cell selection
based on the list of neighbor cells learned from the network").

:func:`simulate_drive` walks a trajectory through a deployment and
returns the full handover log — which cells served the UE, when each
switch happened, whether it crossed an operator boundary, and the
capacity trace — ready to feed the emulation harness in place of the
stochastic processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cells import Cell, Deployment
from .geometry import Trajectory
from .propagation import capacity_bps

DEFAULT_HYSTERESIS_DB = 3.0
DEFAULT_TIME_TO_TRIGGER_S = 0.64   # a standard LTE TTT value
DEFAULT_SAMPLE_INTERVAL_S = 0.2
MIN_SERVABLE_RSRP_DBM = -120.0


@dataclass(frozen=True)
class HandoverRecord:
    at: float
    from_pci: Optional[int]
    to_pci: int
    from_operator: Optional[str]
    to_operator: str

    @property
    def crosses_operator(self) -> bool:
        return (self.from_operator is not None
                and self.from_operator != self.to_operator)


@dataclass
class DriveLog:
    """Everything a simulated drive produced."""

    handovers: list = field(default_factory=list)
    #: (t, serving_pci, rsrp_dbm, capacity_bps) per sample
    samples: list = field(default_factory=list)
    duration: float = 0.0

    @property
    def handover_count(self) -> int:
        return len(self.handovers)

    @property
    def operator_switches(self) -> int:
        return sum(1 for h in self.handovers if h.crosses_operator)

    @property
    def mttho(self) -> float:
        """Mean time between handovers (the paper's MTTHO).

        A drive with zero handovers has no inter-handover time at all:
        returns ``inf`` so fleet aggregates can filter it rather than
        silently averaging in the drive duration.  With exactly one
        handover the true MTTHO is unobservable; ``duration`` is
        returned as a *lower bound* (at most one handover happened in
        the whole drive, so the mean gap is at least this long).
        """
        if not self.handovers:
            return float("inf")
        if len(self.handovers) == 1:
            return self.duration
        gaps = [self.handovers[i].at - self.handovers[i - 1].at
                for i in range(1, len(self.handovers))]
        return sum(gaps) / len(gaps)

    def capacity_trace(self, interval: float = 1.0) -> list:
        """Per-``interval`` serving-cell capacity (for the emulation)."""
        if not self.samples:
            return []
        trace = []
        bucket = []
        next_edge = interval
        for t, _, _, capacity in self.samples:
            while t >= next_edge:
                trace.append(sum(bucket) / len(bucket) if bucket else 0.0)
                bucket = []
                next_edge += interval
            bucket.append(capacity)
        if bucket:
            trace.append(sum(bucket) / len(bucket))
        return trace


class CellSelector:
    """The UE's measurement + A3 decision state machine."""

    def __init__(self, deployment: Deployment,
                 hysteresis_db: float = DEFAULT_HYSTERESIS_DB,
                 time_to_trigger_s: float = DEFAULT_TIME_TO_TRIGGER_S,
                 use_neighbor_list: bool = False,
                 ue_id: int = 0, seed: int = 0):
        self.deployment = deployment
        self.hysteresis_db = hysteresis_db
        self.time_to_trigger_s = time_to_trigger_s
        self.use_neighbor_list = use_neighbor_list
        self.ue_id = ue_id
        self.seed = seed
        self.serving: Optional[Cell] = None
        self._candidate_pci: Optional[int] = None
        self._candidate_since: Optional[float] = None

    def _candidates(self) -> list:
        if self.use_neighbor_list and self.serving is not None:
            return self.deployment.neighbors_of(self.serving.pci)
        return self.deployment.cells

    def step(self, t: float, position) -> tuple:
        """One measurement cycle.

        Returns ``(serving_rsrp, handover_to)``: the serving RSRP after
        this cycle, and the Cell switched to (or None).
        """
        measurements = self.deployment.measure(position, self.ue_id,
                                               self.seed)
        if self.serving is None:
            best_pci = max(measurements, key=measurements.get)
            self.serving = self.deployment.cell(best_pci)
            return measurements[best_pci], self.serving

        serving_rsrp = measurements[self.serving.pci]
        best_candidate = None
        best_rsrp = serving_rsrp + self.hysteresis_db
        for cell in self._candidates():
            rsrp = measurements.get(cell.pci)
            if rsrp is not None and rsrp > best_rsrp:
                best_candidate, best_rsrp = cell, rsrp

        if best_candidate is None:
            self._candidate_pci = None
            self._candidate_since = None
            return serving_rsrp, None

        if self._candidate_pci != best_candidate.pci:
            # A3 entered for a (new) candidate: start the TTT clock.
            self._candidate_pci = best_candidate.pci
            self._candidate_since = t
            return serving_rsrp, None

        if t - self._candidate_since >= self.time_to_trigger_s:
            self.serving = best_candidate
            self._candidate_pci = None
            self._candidate_since = None
            return best_rsrp, best_candidate
        return serving_rsrp, None


def simulate_drive(deployment: Deployment, trajectory: Trajectory,
                   duration: Optional[float] = None,
                   hysteresis_db: float = DEFAULT_HYSTERESIS_DB,
                   time_to_trigger_s: float = DEFAULT_TIME_TO_TRIGGER_S,
                   use_neighbor_list: bool = False,
                   sample_interval: float = DEFAULT_SAMPLE_INTERVAL_S,
                   ue_id: int = 0, seed: int = 0) -> DriveLog:
    """Drive the trajectory, logging handovers and the capacity trace."""
    duration = duration if duration is not None \
        else trajectory.total_duration
    selector = CellSelector(deployment, hysteresis_db, time_to_trigger_s,
                            use_neighbor_list, ue_id=ue_id, seed=seed)
    log = DriveLog(duration=duration)
    t = 0.0
    while t <= duration:
        position = trajectory.position_at(t)
        previous = selector.serving
        rsrp, switched_to = selector.step(t, position)
        if switched_to is not None and previous is not switched_to:
            log.handovers.append(HandoverRecord(
                at=t,
                from_pci=previous.pci if previous else None,
                to_pci=switched_to.pci,
                from_operator=previous.operator if previous else None,
                to_operator=switched_to.operator))
        log.samples.append((t, selector.serving.pci, rsrp,
                            capacity_bps(rsrp)))
        t += sample_interval
    # The initial camping on a cell is not a handover.
    if log.handovers and log.handovers[0].from_pci is None:
        log.handovers.pop(0)
    return log
