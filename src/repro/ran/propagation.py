"""Radio propagation: log-distance path loss, shadowing, and a
capacity mapping.

The model is the standard urban-macro abstraction: received power (RSRP)
falls with log-distance, plus lognormal shadowing that is *spatially
correlated* (a shadow doesn't flicker packet to packet), and link
capacity follows a truncated Shannon curve on the resulting SNR.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .geometry import Point

#: 3GPP-flavored urban macro defaults.
DEFAULT_TX_POWER_DBM = 46.0       # eNodeB, 20 W
DEFAULT_PATH_LOSS_EXPONENT = 3.7
DEFAULT_REFERENCE_LOSS_DB = 34.0  # at 1 m, ~2 GHz
DEFAULT_SHADOWING_SIGMA_DB = 7.0
DEFAULT_SHADOW_CORRELATION_M = 50.0  # decorrelation distance
NOISE_FLOOR_DBM = -104.0          # 10 MHz LTE carrier
MAX_SPECTRAL_EFFICIENCY = 5.55    # 64-QAM cap (bits/s/Hz)
DEFAULT_BANDWIDTH_HZ = 10e6


def path_loss_db(distance_m: float,
                 exponent: float = DEFAULT_PATH_LOSS_EXPONENT,
                 reference_db: float = DEFAULT_REFERENCE_LOSS_DB) -> float:
    """Log-distance path loss (dB)."""
    distance = max(distance_m, 1.0)
    return reference_db + 10.0 * exponent * math.log10(distance)


class ShadowingField:
    """Spatially-correlated lognormal shadowing along a trajectory.

    Gudmundson-style: the shadowing value decorrelates exponentially with
    distance travelled.  One independent field per (cell, UE) pair.
    """

    def __init__(self, sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB,
                 correlation_m: float = DEFAULT_SHADOW_CORRELATION_M,
                 seed: int = 0):
        self.sigma_db = sigma_db
        self.correlation_m = correlation_m
        self.rng = random.Random(seed)
        self._value = self.rng.gauss(0.0, sigma_db)
        self._last_position: Point = None

    def sample(self, position: Point) -> float:
        if self._last_position is None:
            self._last_position = position
            return self._value
        moved = position.distance_to(self._last_position)
        self._last_position = position
        rho = math.exp(-moved / self.correlation_m)
        innovation_sigma = self.sigma_db * math.sqrt(max(0.0, 1 - rho ** 2))
        self._value = rho * self._value + self.rng.gauss(0, innovation_sigma)
        return self._value


def rsrp_dbm(tx_power_dbm: float, distance_m: float,
             shadowing_db: float = 0.0,
             exponent: float = DEFAULT_PATH_LOSS_EXPONENT) -> float:
    """Received power at the UE."""
    return tx_power_dbm - path_loss_db(distance_m, exponent) + shadowing_db


def snr_db(rsrp: float, noise_floor_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Signal-to-noise ratio implied by the received power."""
    return rsrp - noise_floor_dbm


def capacity_bps(rsrp: float, bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
                 noise_floor_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Truncated-Shannon downlink capacity for one UE owning the cell."""
    snr_linear = 10.0 ** (snr_db(rsrp, noise_floor_dbm) / 10.0)
    efficiency = min(math.log2(1.0 + snr_linear), MAX_SPECTRAL_EFFICIENCY)
    return max(bandwidth_hz * efficiency * 0.75, 1e5)  # 25% overhead
