"""Cell deployments: towers on a plane, owned by bTelcos of any scale."""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from .geometry import Point
from .propagation import (
    DEFAULT_TX_POWER_DBM,
    ShadowingField,
    rsrp_dbm,
)

_cell_ids = itertools.count(1)


@dataclass
class Cell:
    """One cell site.

    ``operator`` is the owning bTelco's identity — in CellBricks adjacent
    cells routinely belong to *different* operators, which is what makes
    "switching towers often implies switching bTelcos" (§4.2).
    """

    position: Point
    operator: str
    pci: int = field(default_factory=lambda: next(_cell_ids))
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    path_loss_exponent: float = 3.7
    #: terrain-dependent shadowing depth: ~4 dB open suburban, ~8 dB
    #: dense urban canyons.
    shadowing_sigma_db: float = 7.0

    def __post_init__(self):
        self._shadowing: dict[int, ShadowingField] = {}

    def _identity_salt(self) -> int:
        """A seed salt stable across processes and allocation order.

        Derived from the cell's position (PCIs come from a global counter
        and would make results depend on how many cells were ever
        created — a determinism bug caught by test_determinism.py).
        """
        x = int(self.position.x * 1000)
        y = int(self.position.y * 1000)
        return ((x * 2654435761) ^ (y * 40503)) & 0xFFFFFFFF

    def shadowing_for(self, ue_id: int, seed: int = 0) -> ShadowingField:
        if ue_id not in self._shadowing:
            self._shadowing[ue_id] = ShadowingField(
                sigma_db=self.shadowing_sigma_db,
                seed=seed ^ self._identity_salt() ^ ue_id)
        return self._shadowing[ue_id]

    def rsrp_at(self, position: Point, ue_id: int = 0,
                seed: int = 0) -> float:
        shadow = self.shadowing_for(ue_id, seed).sample(position)
        return rsrp_dbm(self.tx_power_dbm,
                        self.position.distance_to(position), shadow,
                        self.path_loss_exponent)


@dataclass
class Deployment:
    """A set of cells covering an area."""

    cells: list = field(default_factory=list)

    def add(self, cell: Cell) -> Cell:
        self.cells.append(cell)
        return cell

    def measure(self, position: Point, ue_id: int = 0,
                seed: int = 0) -> dict:
        """RSRP of every cell at ``position`` (the UE's measurement
        report)."""
        return {cell.pci: cell.rsrp_at(position, ue_id, seed)
                for cell in self.cells}

    def cell(self, pci: int) -> Optional[Cell]:
        for cell in self.cells:
            if cell.pci == pci:
                return cell
        return None

    def neighbors_of(self, pci: int, count: int = 6) -> list:
        """The network-provided neighbor list (§4.2's 'network-assisted'
        hint): the geographically closest cells."""
        serving = self.cell(pci)
        if serving is None:
            return []
        others = [cell for cell in self.cells if cell.pci != pci]
        others.sort(key=lambda cell:
                    cell.position.distance_to(serving.position))
        return others[:count]


def corridor_deployment(length_m: float, inter_site_distance_m: float,
                        operators: tuple = ("op-a", "op-b"),
                        offset_m: float = 40.0,
                        shadowing_sigma_db: float = 7.0,
                        rng: Optional[random.Random] = None) -> Deployment:
    """Cells along a road corridor, alternating (or randomly drawn)
    between operators — the many-small-bTelcos world.

    Sites sit ``offset_m`` off the road, alternating sides, with mild
    placement jitter so handover points are not perfectly periodic.
    """
    rng = rng or random.Random(0)
    deployment = Deployment()
    x = inter_site_distance_m / 2
    index = 0
    while x < length_m + inter_site_distance_m:
        jitter = rng.uniform(-0.15, 0.15) * inter_site_distance_m
        side = offset_m if index % 2 == 0 else -offset_m
        operator = operators[rng.randrange(len(operators))]
        deployment.add(Cell(position=Point(x + jitter, side),
                            operator=operator,
                            shadowing_sigma_db=shadowing_sigma_db))
        x += inter_site_distance_m
        index += 1
    return deployment
