"""Stdlib-only cryptographic substrate for the CellBricks reproduction.

Public surface:

* :func:`generate_keypair`, :class:`PublicKey`, :class:`PrivateKey` — RSA
  with PSS-style signatures and OAEP-wrapped hybrid encryption.
* :func:`seal` / :func:`open_sealed` — authenticated symmetric encryption.
* :func:`hkdf`, :func:`kdf_3gpp` — key derivation (SAP sessions, LTE key
  hierarchy).
* :class:`CertificateAuthority`, :class:`Certificate` — minimal PKI.
* :func:`measure_crypto_costs` — measured RSA service times for
  simulation cost charging (the megaload mixed-fidelity bridge).
"""

from .ca import (
    ROLE_BROKER,
    ROLE_BTELCO,
    ROLE_CA,
    Certificate,
    CertificateAuthority,
    CertificateError,
    validate_certificate,
)
from .cipher import IntegrityError, open_sealed, seal
from .hashes import (
    constant_time_equal,
    digest_fingerprint,
    hmac_sha256,
    sha256,
    sha256_hex,
)
from .kdf import hkdf, hkdf_expand, hkdf_extract, kdf_3gpp
from .rsa import (
    DEFAULT_KEY_BITS,
    CryptoError,
    PrivateKey,
    PublicKey,
    clear_verify_cache,
    generate_keypair,
    verify_cache_stats,
)
from .simcost import clear_measured_costs, measure_crypto_costs

__all__ = [
    "ROLE_BROKER",
    "ROLE_BTELCO",
    "ROLE_CA",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "CryptoError",
    "DEFAULT_KEY_BITS",
    "clear_verify_cache",
    "verify_cache_stats",
    "IntegrityError",
    "PrivateKey",
    "PublicKey",
    "constant_time_equal",
    "digest_fingerprint",
    "generate_keypair",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "kdf_3gpp",
    "clear_measured_costs",
    "measure_crypto_costs",
    "open_sealed",
    "seal",
    "sha256",
    "sha256_hex",
    "validate_certificate",
]
