"""A miniature certificate authority.

The paper assumes broker and bTelco public keys "are distributed and
maintained using standard PKI techniques, akin to existing Internet
services" (§4.1).  This module provides just enough PKI for the protocol to
exercise that assumption: certificates binding a subject name and role to a
public key, signed by a CA, with expiry and revocation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .rsa import PrivateKey, PublicKey, generate_keypair

ROLE_BROKER = "broker"
ROLE_BTELCO = "btelco"
ROLE_CA = "ca"

VALID_ROLES = frozenset({ROLE_BROKER, ROLE_BTELCO, ROLE_CA})


class CertificateError(Exception):
    """Raised when a certificate fails validation."""


@dataclass(frozen=True)
class Certificate:
    """A signed binding of ``(subject, role, public_key, validity)``.

    ``not_before``/``not_after`` are simulation timestamps (seconds); the
    issuer signs the canonical encoding of all other fields.
    """

    subject: str
    role: str
    public_key: PublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding."""
        body = {
            "subject": self.subject,
            "role": self.role,
            "public_key": self.public_key.to_bytes().hex(),
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }
        return json.dumps(body, sort_keys=True).encode()

    def is_time_valid(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after


@dataclass
class CertificateAuthority:
    """Issues and validates certificates for brokers and bTelcos."""

    name: str = "repro-root-ca"
    key: PrivateKey = field(default_factory=generate_keypair)
    _next_serial: int = 1
    _revoked: set = field(default_factory=set)

    @property
    def public_key(self) -> PublicKey:
        return self.key.public_key

    def issue(self, subject: str, role: str, public_key: PublicKey,
              not_before: float = 0.0, not_after: float = 10**9) -> Certificate:
        """Issue a certificate for ``subject`` acting as ``role``."""
        if role not in VALID_ROLES:
            raise CertificateError(f"unknown role: {role!r}")
        cert = Certificate(
            subject=subject, role=role, public_key=public_key,
            issuer=self.name, serial=self._next_serial,
            not_before=not_before, not_after=not_after,
        )
        self._next_serial += 1
        signature = self.key.sign(cert.tbs_bytes())
        return Certificate(**{**cert.__dict__, "signature": signature})

    def revoke(self, serial: int) -> None:
        """Add ``serial`` to the revocation list."""
        self._revoked.add(serial)

    def is_revoked(self, cert: Certificate) -> bool:
        return cert.serial in self._revoked

    def validate(self, cert: Certificate, now: float,
                 expected_role: str | None = None) -> None:
        """Raise :class:`CertificateError` unless ``cert`` is currently valid."""
        validate_certificate(cert, self.public_key, now, expected_role)
        if self.is_revoked(cert):
            raise CertificateError(f"certificate {cert.serial} is revoked")


def validate_certificate(cert: Certificate, ca_public_key: PublicKey,
                         now: float, expected_role: str | None = None) -> None:
    """Offline validation against a trusted CA public key.

    This is what bTelcos and brokers run when they meet each other for the
    first time with no pre-established agreement (the core CellBricks
    premise).
    """
    if not cert.signature:
        raise CertificateError("certificate is unsigned")
    if not ca_public_key.verify(cert.tbs_bytes(), cert.signature):
        raise CertificateError("bad CA signature")
    if not cert.is_time_valid(now):
        raise CertificateError("certificate expired or not yet valid")
    if expected_role is not None and cert.role != expected_role:
        raise CertificateError(
            f"expected role {expected_role!r}, certificate says {cert.role!r}")
