"""RSA public-key primitives: keygen, PSS-style signatures, OAEP + hybrid
encryption.

SAP (§4.1 of the paper) "moves away from shared secrets and instead relies
on public-private key cryptography".  This module supplies those operations
from scratch (no third-party crypto package is available offline):

* :func:`generate_keypair` — Miller–Rabin based RSA key generation,
* :meth:`PrivateKey.sign` / :meth:`PublicKey.verify` — RSASSA-PSS-style
  randomized signatures over SHA-256,
* :meth:`PublicKey.encrypt` / :meth:`PrivateKey.decrypt` — hybrid
  encryption (RSA-OAEP wraps a fresh symmetric key; the body is sealed with
  the authenticated stream cipher), so arbitrarily long SAP messages fit.
"""

from __future__ import annotations

import math
import random
import secrets
from collections import OrderedDict
from dataclasses import dataclass

from . import cipher
from .hashes import DIGEST_SIZE, constant_time_equal, digest_fingerprint, mgf1, sha256
from .primes import generate_prime

DEFAULT_KEY_BITS = 1024  # educational-grade default; tests stay fast

_PSS_SALT_SIZE = 16

# -- verify-result memoization ----------------------------------------------
# PSS verification is deterministic in (key, message, signature), so the
# boolean outcome can be memoized: the broker hot path re-verifies the
# same certificate signature for every request a bTelco relays, and
# retransmitted SAP requests re-verify identical (message, signature)
# pairs.  Keyed by ((n, e), sha256(message), signature) — the message is
# hashed so arbitrarily long inputs stay cheap to key — with LRU
# eviction.  Purely a wall-clock optimization: results are bit-identical
# with or without the cache.
_VERIFY_CACHE: OrderedDict[tuple, bool] = OrderedDict()
_VERIFY_CACHE_MAX = 8192
_verify_cache_hits = 0
_verify_cache_misses = 0


def verify_cache_stats() -> dict:
    """Hit/miss counters for the process-wide verify cache."""
    return {"hits": _verify_cache_hits, "misses": _verify_cache_misses,
            "size": len(_VERIFY_CACHE), "max_size": _VERIFY_CACHE_MAX}


def clear_verify_cache() -> None:
    """Empty the verify cache and reset its hit/miss counters."""
    global _verify_cache_hits, _verify_cache_misses
    _VERIFY_CACHE.clear()
    _verify_cache_hits = 0
    _verify_cache_misses = 0


class CryptoError(Exception):
    """Raised for malformed ciphertexts, bad signatures requested as data, etc."""


def _int_from_bytes(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


@dataclass(frozen=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        """Deterministic serialization (length-prefixed n and e)."""
        n_bytes = _int_to_bytes(self.n, self.byte_size)
        e_bytes = _int_to_bytes(self.e, (self.e.bit_length() + 7) // 8 or 1)
        return (len(n_bytes).to_bytes(4, "big") + n_bytes
                + len(e_bytes).to_bytes(4, "big") + e_bytes)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        n_len = _int_from_bytes(data[:4])
        n = _int_from_bytes(data[4:4 + n_len])
        offset = 4 + n_len
        e_len = _int_from_bytes(data[offset:offset + 4])
        e = _int_from_bytes(data[offset + 4:offset + 4 + e_len])
        if n <= 0 or e <= 0:
            raise CryptoError("malformed public key")
        return cls(n=n, e=e)

    def fingerprint(self) -> str:
        """Hex digest identifying this key (SAP uses these as identifiers)."""
        return digest_fingerprint(self.to_bytes())

    # -- verification -----------------------------------------------------
    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PSS-style signature.  Returns True/False, never raises.

        Results are memoized in a process-wide LRU (see module header):
        a repeat verification of the same (key, message, signature) costs
        one hash instead of a modular exponentiation.
        """
        global _verify_cache_hits, _verify_cache_misses
        key = (self.n, self.e, sha256(message), signature)
        cached = _VERIFY_CACHE.get(key)
        if cached is not None:
            _VERIFY_CACHE.move_to_end(key)
            _verify_cache_hits += 1
            return cached
        _verify_cache_misses += 1
        result = self._verify_uncached(message, signature)
        _VERIFY_CACHE[key] = result
        if len(_VERIFY_CACHE) > _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.popitem(last=False)
        return result

    def _verify_uncached(self, message: bytes, signature: bytes) -> bool:
        if len(signature) != self.byte_size:
            return False
        s = _int_from_bytes(signature)
        if s >= self.n:
            return False
        em = _int_to_bytes(pow(s, self.e, self.n), self.byte_size)
        return self._pss_verify(message, em)

    def _pss_verify(self, message: bytes, em: bytes) -> bool:
        if em[-1:] != b"\xbc":
            return False
        h = em[-1 - DIGEST_SIZE:-1]
        masked_db = em[:-1 - DIGEST_SIZE]
        db_mask = mgf1(h, len(masked_db))
        db = bytes(m ^ k for m, k in zip(masked_db, db_mask))
        # The signer cleared the top bit of the encoded message so it stays
        # below the modulus; clear it here too before checking the padding.
        db = bytes([db[0] & 0x7F]) + db[1:]
        # db = PS(zeroes) || 0x01 || salt: the separator is the first
        # non-zero byte (the salt itself may contain 0x01 bytes).
        separator = 0
        while separator < len(db) and db[separator] == 0:
            separator += 1
        if separator >= len(db) or db[separator] != 0x01:
            return False
        salt = db[separator + 1:]
        m_prime = b"\x00" * 8 + sha256(message) + salt
        return constant_time_equal(sha256(m_prime), h)

    # -- encryption -------------------------------------------------------
    def _oaep_encrypt_block(self, block: bytes) -> bytes:
        k = self.byte_size
        max_block = k - 2 * DIGEST_SIZE - 2
        if len(block) > max_block:
            raise CryptoError("OAEP block too long")
        l_hash = sha256(b"")
        padding = b"\x00" * (max_block - len(block))
        db = l_hash + padding + b"\x01" + block
        seed = secrets.token_bytes(DIGEST_SIZE)
        db_mask = mgf1(seed, len(db))
        masked_db = bytes(d ^ m for d, m in zip(db, db_mask))
        seed_mask = mgf1(masked_db, DIGEST_SIZE)
        masked_seed = bytes(s ^ m for s, m in zip(seed, seed_mask))
        em = b"\x00" + masked_seed + masked_db
        return _int_to_bytes(pow(_int_from_bytes(em), self.e, self.n), k)

    def encrypt(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Hybrid-encrypt ``plaintext`` to this key.

        A fresh 32-byte content key is OAEP-wrapped, then the payload is
        sealed with the authenticated stream cipher.  Output layout:
        ``wrapped_key (key_size bytes) || sealed_payload``.
        """
        content_key = secrets.token_bytes(DIGEST_SIZE)
        wrapped = self._oaep_encrypt_block(content_key)
        sealed = cipher.seal(content_key, plaintext, associated_data)
        return wrapped + sealed


@dataclass(frozen=True)
class PrivateKey:
    """An RSA private key with its public half attached."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(n=self.n, e=self.e)

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def _crt_context(self) -> tuple[int, int, int]:
        """(d mod p-1, d mod q-1, q^-1 mod p), computed once per key.

        The exponent reductions and the modular inverse are loop
        invariants of :meth:`_private_op`; recomputing them per call
        costs an extended-gcd inverse on the hot path.  Cached on the
        instance (the dataclass is frozen, so bypass ``__setattr__``).
        """
        ctx = self.__dict__.get("_crt_ctx")
        if ctx is None:
            ctx = (self.d % (self.p - 1), self.d % (self.q - 1),
                   pow(self.q, -1, self.p))
            object.__setattr__(self, "_crt_ctx", ctx)
        return ctx

    def _private_op(self, m: int) -> int:
        """m^d mod n via CRT: two half-size exponentiations (~3-4x faster
        than ``pow(m, d, n)``), numerically identical to the direct form."""
        dp, dq, q_inv = self._crt_context()
        mp = pow(m % self.p, dp, self.p)
        mq = pow(m % self.q, dq, self.q)
        h = ((mp - mq) * q_inv) % self.p
        return mq + h * self.q

    # -- signing ----------------------------------------------------------
    def sign(self, message: bytes) -> bytes:
        """Produce a randomized PSS-style signature over SHA-256."""
        em = self._pss_encode(message)
        m = _int_from_bytes(em)
        return _int_to_bytes(self._private_op(m), self.byte_size)

    def _pss_encode(self, message: bytes) -> bytes:
        em_len = self.byte_size
        salt = secrets.token_bytes(_PSS_SALT_SIZE)
        m_prime = b"\x00" * 8 + sha256(message) + salt
        h = sha256(m_prime)
        ps_len = em_len - DIGEST_SIZE - _PSS_SALT_SIZE - 2
        if ps_len < 0:
            raise CryptoError("key too small for PSS encoding")
        db = b"\x00" * ps_len + b"\x01" + salt
        db_mask = mgf1(h, len(db))
        masked_db = bytes(d ^ m for d, m in zip(db, db_mask))
        # Clear the top bit so the integer stays below n.
        masked_db = bytes([masked_db[0] & 0x7F]) + masked_db[1:]
        return masked_db + h + b"\xbc"

    # -- decryption -------------------------------------------------------
    def _oaep_decrypt_block(self, block: bytes) -> bytes:
        k = self.byte_size
        if len(block) != k:
            raise CryptoError("ciphertext block has wrong length")
        em = _int_to_bytes(self._private_op(_int_from_bytes(block)), k)
        if em[0] != 0:
            raise CryptoError("OAEP decoding failed")
        masked_seed = em[1:1 + DIGEST_SIZE]
        masked_db = em[1 + DIGEST_SIZE:]
        seed_mask = mgf1(masked_db, DIGEST_SIZE)
        seed = bytes(s ^ m for s, m in zip(masked_seed, seed_mask))
        db_mask = mgf1(seed, len(masked_db))
        db = bytes(d ^ m for d, m in zip(masked_db, db_mask))
        if not constant_time_equal(db[:DIGEST_SIZE], sha256(b"")):
            raise CryptoError("OAEP decoding failed")
        try:
            separator = db.index(b"\x01", DIGEST_SIZE)
        except ValueError:
            raise CryptoError("OAEP decoding failed") from None
        if any(db[DIGEST_SIZE:separator]):
            raise CryptoError("OAEP decoding failed")
        return db[separator + 1:]

    def decrypt(self, ciphertext: bytes, associated_data: bytes = b"") -> bytes:
        """Reverse :meth:`PublicKey.encrypt`."""
        k = self.byte_size
        if len(ciphertext) < k:
            raise CryptoError("ciphertext too short")
        content_key = self._oaep_decrypt_block(ciphertext[:k])
        try:
            return cipher.open_sealed(content_key, ciphertext[k:], associated_data)
        except cipher.IntegrityError as exc:
            raise CryptoError(str(exc)) from exc


def generate_keypair(bits: int = DEFAULT_KEY_BITS, e: int = 65537,
                     rng: random.Random | None = None) -> PrivateKey:
    """Generate an RSA keypair.

    ``rng`` makes generation deterministic for tests; when omitted a
    cryptographically random source seeds the search.
    """
    if bits < 512:
        raise ValueError("modulus must be at least 512 bits")
    rng = rng or random.Random(secrets.randbits(128))
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        d = pow(e, -1, phi)
        return PrivateKey(n=n, e=e, d=d, p=p, q=q)
