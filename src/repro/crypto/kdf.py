"""Key derivation functions.

Two flavours are provided:

* :func:`hkdf` — RFC 5869 HKDF over SHA-256, used by the SAP protocol to
  derive session keys from the broker-issued shared secret ``ss``.
* :func:`kdf_3gpp` — a 3GPP TS 33.401-style KDF (HMAC keyed by the parent
  key over an FC-tagged parameter string), used by the LTE substrate to
  derive the NAS/AS key hierarchy from KASME.
"""

from __future__ import annotations

from .hashes import DIGEST_SIZE, hmac_sha256


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract (RFC 5869 §2.2)."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869 §2.3)."""
    if length <= 0:
        raise ValueError("length must be positive")
    if length > 255 * DIGEST_SIZE:
        raise ValueError("HKDF output too long")
    blocks = bytearray()
    previous = b""
    counter = 1
    while len(blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks += previous
        counter += 1
    return bytes(blocks[:length])


def hkdf(input_key_material: bytes, salt: bytes = b"", info: bytes = b"",
         length: int = DIGEST_SIZE) -> bytes:
    """One-shot HKDF (extract-then-expand)."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def kdf_3gpp(parent_key: bytes, fc: int, *parameters: bytes) -> bytes:
    """3GPP TS 33.401 Annex A style key derivation.

    The derivation string is ``FC || P0 || L0 || P1 || L1 || ...`` and the
    output is ``HMAC-SHA256(parent_key, S)``, exactly the construction used
    to derive K_NASenc, K_NASint, K_eNB, ... from KASME.
    """
    if not 0 <= fc <= 0xFF:
        raise ValueError("FC must fit in one byte")
    s = bytes([fc])
    for param in parameters:
        if len(param) > 0xFFFF:
            raise ValueError("parameter too long")
        s += param + len(param).to_bytes(2, "big")
    return hmac_sha256(parent_key, s)
