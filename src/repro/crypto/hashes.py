"""Hash helpers shared by the crypto substrate.

Everything in ``repro.crypto`` is built from the Python standard library
(``hashlib``, ``hmac``, ``secrets``) because the reproduction environment is
offline.  The primitives are functional and tested but *educational-grade*:
they demonstrate the protocol semantics CellBricks needs (sign, verify,
encrypt, key derivation) without claiming production hardening.
"""

from __future__ import annotations

import hashlib
import hmac

DIGEST_SIZE = 32  # SHA-256


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as lowercase hex."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return HMAC-SHA256 of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking the position of a mismatch."""
    return hmac.compare_digest(a, b)


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function (RFC 8017 §B.2.1) over SHA-256."""
    if length < 0:
        raise ValueError("mask length must be non-negative")
    output = bytearray()
    counter = 0
    while len(output) < length:
        output += sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
    return bytes(output[:length])


def digest_fingerprint(data: bytes, length: int = 16) -> str:
    """Short hex fingerprint used for identifiers (e.g. key digests).

    CellBricks identifies a UE to its broker by "the digest of the owner's
    public key" (§4.1); this helper produces those identifiers.
    """
    return sha256_hex(data)[: 2 * length]
