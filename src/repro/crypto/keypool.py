"""A process-wide pool of pre-generated RSA keypairs.

RSA key generation is by far the slowest operation in the reproduction
(~0.5 s per 1024-bit key).  Simulated entities do not need *secret* keys —
they need *distinct, functioning* keys — so scenario builders draw from
this deterministic pool instead of generating fresh primes per entity.
Every pool slot is generated once per process and reused.

Never use this for anything outside a simulation.
"""

from __future__ import annotations

import random

from .rsa import PrivateKey, generate_keypair

_POOL: dict[int, PrivateKey] = {}
_POOL_SEED = 0x9E37_79B9


def pooled_keypair(slot: int, bits: int = 1024) -> PrivateKey:
    """Return the pool's keypair for ``slot`` (created on first use).

    Distinct slots yield distinct keys; the same slot always yields the
    same key within and across processes (seeded deterministically).
    """
    key = (slot, bits) if bits != 1024 else slot
    if key not in _POOL:
        _POOL[key] = generate_keypair(
            bits=bits, rng=random.Random(_POOL_SEED + slot * 7919))
    return _POOL[key]


def warm(slots, bits: int = 1024) -> list[PrivateKey]:
    """Pre-generate pool keys for ``slots`` (an iterable of slot numbers).

    Scenario builders and benches call this up front so key generation
    happens outside the timed region (and each key's CRT context is
    precomputed with one throwaway signature), instead of lazily on the
    first attach that touches each entity.
    """
    keys = []
    for slot in slots:
        key = pooled_keypair(slot, bits=bits)
        key._crt_context()
        keys.append(key)
    return keys
