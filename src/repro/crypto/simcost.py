"""Measured crypto service times for simulation cost charging.

The broker's modeled per-attach processing cost
(:data:`repro.core.broker.AUTH_REQUEST_PROCESSING` and its calibrated
stage decomposition) was calibrated once against the paper's testbed.
The megaload mixed-fidelity harness wants the *scripted* majority of a
population run to charge the broker model with what the RSA primitives
actually cost **on this machine**, so the modeled service time tracks
the measured costs the real-cohort brokerd would pay.

:func:`measure_crypto_costs` times one PSS sign (an RSA private
operation via CRT — the same primitive behind authVec decryption and
``seal_and_sign``) and one PSS verify over fresh messages, then composes
a per-attach service time from :data:`ATTACH_CRYPTO_OPS`, the primitive
census of the brokered SAP attach (decrypt + two verifies + two
seal-and-signs, mirroring the calibrated decomposition in
``repro.core.broker``).

The measurement runs **once per process** and is cached, so two seeded
runs in the same process charge byte-identical costs and replay
byte-identical digests.  Across machines the charged cost differs — a
mixed-fidelity digest is a *within-process* determinism check, never a
committed-baseline comparison (the ``--real-fraction 0`` digest gate
stays machine-independent because charging is off there).
"""

from __future__ import annotations

import time
from typing import Optional

from .keypool import pooled_keypair

#: keypool slot reserved for the cost measurement (clear of scenario
#: builders' and benches' slot ranges).
_SLOT = 9700

#: primitive operations per brokered SAP attach, mirroring the
#: calibrated pipeline decomposition in ``repro.core.broker``:
#: one authVec RSA decrypt + two seal_and_sign RSA private ops, and two
#: PSS verifies (sig_t / sig_authvec).  Certificate validation is
#: memoized per cert at population scale, so it amortizes to ~0.
ATTACH_CRYPTO_OPS = {"private_op": 3, "sig_verify": 2}

_CACHE: Optional[dict] = None


def measure_crypto_costs(samples: int = 8, *, force: bool = False) -> dict:
    """Measure RSA sign/verify wall times; returns the charging model.

    Returns ``{"sign_ms", "verify_ms", "attach_cost_s", "samples"}``
    where ``attach_cost_s`` composes the per-attach broker service time
    from :data:`ATTACH_CRYPTO_OPS`.  Cached per process (``force=True``
    re-measures, used by tests only).
    """
    global _CACHE
    if _CACHE is not None and not force:
        return _CACHE
    key = pooled_keypair(_SLOT)
    public = key.public_key
    # Warm-up: builds the CRT context and touches every code path so the
    # timed samples measure steady-state arithmetic, not setup.
    warm_sig = key.sign(b"simcost-warmup")
    public.verify(b"simcost-warmup", warm_sig)

    messages = [b"simcost-sample-%d" % i for i in range(samples)]
    start = time.perf_counter()
    signatures = [key.sign(message) for message in messages]
    sign_s = (time.perf_counter() - start) / samples
    # Distinct (message, signature) pairs so the process-wide verify
    # cache cannot short-circuit the measurement.
    start = time.perf_counter()
    for message, signature in zip(messages, signatures):
        public.verify(message, signature)
    verify_s = (time.perf_counter() - start) / samples

    attach_cost_s = (ATTACH_CRYPTO_OPS["private_op"] * sign_s
                     + ATTACH_CRYPTO_OPS["sig_verify"] * verify_s)
    _CACHE = {
        "sign_ms": round(sign_s * 1000.0, 4),
        "verify_ms": round(verify_s * 1000.0, 4),
        # Rounded to 0.1 us so the charged constant is a clean float in
        # reports; all within-process users share this exact value.
        "attach_cost_s": round(attach_cost_s, 7),
        "samples": samples,
    }
    return _CACHE


def clear_measured_costs() -> None:
    """Drop the cached measurement (tests re-measure after this)."""
    global _CACHE
    _CACHE = None
