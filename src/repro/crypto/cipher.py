"""Authenticated symmetric encryption built from SHA-256.

The environment has no AES implementation available offline, so we build a
CTR-mode stream cipher whose keystream blocks are
``SHA256(key || nonce || counter)``, composed with encrypt-then-MAC
(HMAC-SHA256) for integrity.  This mirrors the role AES-GCM plays in a
production stack: SAP responses, traffic reports, and NAS payloads are
sealed with it.
"""

from __future__ import annotations

import secrets

from .hashes import DIGEST_SIZE, constant_time_equal, hmac_sha256, sha256
from .kdf import hkdf

NONCE_SIZE = 16
TAG_SIZE = DIGEST_SIZE


class IntegrityError(Exception):
    """Raised when an authenticated message fails its integrity check."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = bytearray()
    counter = 0
    while len(blocks) < length:
        blocks += sha256(key + nonce + counter.to_bytes(8, "big"))
        counter += 1
    return bytes(blocks[:length])


def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    """Derive independent encryption and MAC keys from one master key."""
    material = hkdf(key, info=b"repro.cipher.subkeys", length=2 * DIGEST_SIZE)
    return material[:DIGEST_SIZE], material[DIGEST_SIZE:]


def seal(key: bytes, plaintext: bytes, associated_data: bytes = b"",
         nonce: bytes | None = None) -> bytes:
    """Encrypt and authenticate ``plaintext``.

    Returns ``nonce || ciphertext || tag``.  ``associated_data`` is
    authenticated but not encrypted (used for message-type binding).
    """
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_SIZE)
    if len(nonce) != NONCE_SIZE:
        raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
    enc_key, mac_key = _subkeys(key)
    stream = _keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_sha256(mac_key, nonce + associated_data + ciphertext)
    return nonce + ciphertext + tag


def open_sealed(key: bytes, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a message produced by :func:`seal`.

    Raises :class:`IntegrityError` if the tag does not verify.
    """
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise IntegrityError("sealed message too short")
    nonce = sealed[:NONCE_SIZE]
    ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
    tag = sealed[-TAG_SIZE:]
    enc_key, mac_key = _subkeys(key)
    expected = hmac_sha256(mac_key, nonce + associated_data + ciphertext)
    if not constant_time_equal(tag, expected):
        raise IntegrityError("authentication tag mismatch")
    stream = _keystream(enc_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
