"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro fig7 [--trials N] [--rat lte|5g]
    python -m repro table1 [--scale S] [--routes suburb,downtown]
    python -m repro fig8
    python -m repro fig9 [--duration S]
    python -m repro fig10 [--duration S] [--single-drive]
    python -m repro attach [--arch BL|CB] [--placement local|us-west-1|...]
    python -m repro chaos [--smoke] [--rat lte|5g]
    python -m repro trace [--scenario attach|chaos] [--format jsonl|chrome|summary]
    python -m repro metrics [--scenario attach|chaos]
    python -m repro report [--scale S] [--output report.md]

Each subcommand prints the same rows/series the corresponding benchmark
produces, without the pytest machinery.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.testbed import run_figure7, run_figure7_5g

    if args.trace:
        return _fig7_traced(args)
    figure7 = run_figure7_5g if args.rat == "5g" else run_figure7
    print(f"Fig 7 - attachment latency breakdown ({args.trials} trials, "
          f"{args.rat})")
    print(f"{'placement':11s} {'arch':4s} {'total':>8s} {'agw+brokerd':>12s} "
          f"{'enb':>6s} {'ue':>6s} {'other':>8s}")
    for result in figure7(trials=args.trials):
        print(f"{result.placement:11s} {result.arch:4s} "
              f"{result.total_ms:8.2f} {result.agw_brokerd_ms:12.2f} "
              f"{result.enb_ms:6.2f} {result.ue_ms:6.2f} "
              f"{result.other_ms:8.2f}")
    return 0


def _fig7_traced(args: argparse.Namespace) -> int:
    """Fig 7 from the *trace*: per-leg breakdown measured out of the
    recorded span trees rather than the module-time accounting.  The four
    legs sum exactly to the end-to-end latency by construction; with
    ``--obs-output`` the per-leg p50/p99 land in ``BENCH_obs.json``."""
    import json

    from repro.analysis import percentile
    from repro.obs.export import LEG_NAMES, attach_leg_breakdown, \
        mean_leg_breakdown
    from repro.testbed import run_traced_attach, run_traced_attach_5g

    traced = run_traced_attach_5g if args.rat == "5g" else run_traced_attach
    print(f"Fig 7 - traced per-leg breakdown ({args.trials} trials, "
          f"{args.rat})")
    print(f"{'placement':11s} {'arch':4s} {'total':>8s} {'ue':>7s} "
          f"{'transit':>8s} {'btelco':>7s} {'broker':>7s} {'(enb)':>7s}")
    bench: dict = {}
    for placement in ("local", "us-west-1", "us-east-1"):
        for arch in ("BL", "CB"):
            _, obs, _ = traced(arch=arch, placement=placement,
                               trials=args.trials)
            breakdowns = attach_leg_breakdown(obs.tracer.spans())
            legs = mean_leg_breakdown(breakdowns)
            if legs is None:
                print(f"{placement:11s} {arch:4s}  (no completed attaches "
                      "in trace)")
                continue
            print(f"{placement:11s} {arch:4s} {legs['total_ms']:8.2f} "
                  f"{legs['ue_crypto_ms']:7.2f} "
                  f"{legs['radio_nas_transit_ms']:8.2f} "
                  f"{legs['btelco_verify_ms']:7.2f} "
                  f"{legs['broker_verify_sign_ms']:7.2f} "
                  f"{legs['enb_ms']:7.2f}")
            cell = {"trials": len(breakdowns), "mean": legs}
            for key in ("total_ms",) + LEG_NAMES:
                values = [b[key] for b in breakdowns]
                cell[key] = {"p50": round(percentile(values, 50), 6),
                             "p99": round(percentile(values, 99), 6)}
            bench[f"{arch}@{placement}"] = cell
    if args.obs_output:
        with open(args.obs_output, "w") as handle:
            handle.write(json.dumps(bench, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.obs_output}")
    return 0


def _chaos_obs_run(args: argparse.Namespace, obs) -> None:
    """One seeded chaos run (the --smoke fault script) recording into
    ``obs`` — shared by the ``trace`` and ``metrics`` subcommands."""
    from repro.emulation import ChaosSchedule, brownout, outage, run_chaos

    schedule = ChaosSchedule()
    schedule.add(outage(2.0, 2.0, target="*-broker"))
    schedule.add(brownout(8.0, 2.0))
    run_chaos(attaches=args.attaches, schedule=schedule, revoke_every=10,
              seed=args.seed, base_loss=args.loss, obs=obs, rat=args.rat)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced scenario and export its span tree."""
    import json

    from repro.obs import Obs
    from repro.obs.export import (
        LEG_NAMES,
        attach_leg_breakdown,
        mean_leg_breakdown,
        spans_to_chrome,
        spans_to_jsonl,
        summarize,
    )

    obs = Obs()
    if args.scenario == "attach":
        from repro.testbed import run_traced_attach, run_traced_attach_5g

        traced = run_traced_attach_5g if args.rat == "5g" \
            else run_traced_attach
        traced(arch=args.arch, placement=args.placement,
               trials=args.trials, seed=args.seed, obs=obs)
    else:
        _chaos_obs_run(args, obs)

    spans = obs.tracer.spans()
    if args.format == "jsonl":
        text = spans_to_jsonl(spans)
    elif args.format == "chrome":
        text = json.dumps(spans_to_chrome(spans), sort_keys=True,
                          separators=(",", ":")) + "\n"
    else:
        lines = [summarize(spans)]
        legs = mean_leg_breakdown(attach_leg_breakdown(spans))
        if legs is not None:
            lines.append("")
            lines.append(f"mean attach legs ({args.scenario}): "
                         f"total {legs['total_ms']:.2f} ms")
            for key in LEG_NAMES:
                lines.append(f"  {key:24s} {legs[key]:8.2f} ms")
        if obs.tracer.spans_dropped:
            lines.append(f"({obs.tracer.spans_dropped} oldest spans "
                         "dropped by the ring buffer)")
        text = "\n".join(lines) + "\n"

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(spans)} spans)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a scenario metrics-only and print the fleet-wide registry
    snapshot (counters/gauges as numbers, histograms as summaries)."""
    import json

    from repro.obs import Obs

    obs = Obs(tracing=False)
    if args.scenario == "attach":
        from repro.testbed import run_traced_attach, run_traced_attach_5g

        traced = run_traced_attach_5g if args.rat == "5g" \
            else run_traced_attach
        traced(arch=args.arch, placement=args.placement,
               trials=args.trials, seed=args.seed, obs=obs)
    else:
        _chaos_obs_run(args, obs)
    print(json.dumps(obs.metrics.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    from repro.testbed import run_attach_benchmark, run_attach_benchmark_5g

    benchmark = run_attach_benchmark_5g if args.rat == "5g" \
        else run_attach_benchmark
    result = benchmark(args.arch, args.placement, trials=args.trials)
    print(f"{args.arch} @ {args.placement} ({args.rat}): "
          f"{result.total_ms:.2f} ms "
          f"(agw+brokerd {result.agw_brokerd_ms:.2f}, enb "
          f"{result.enb_ms:.2f}, ue {result.ue_ms:.2f}, other "
          f"{result.other_ms:.2f})")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.emulation import render_table1, run_table1

    routes = tuple(args.routes.split(",")) if args.routes else \
        ("suburb", "downtown", "highway")
    result = run_table1(seed=args.seed, duration_scale=args.scale,
                        routes=routes)
    print(render_table1(result))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.analysis import timeline
    from repro.emulation import run_figure8

    result = run_figure8()
    print(f"Fig 8 - handover at t={result.handover_at:.1f}s")
    print("\nMNO (TCP):")
    print(timeline(result.mno_mbps, markers=[int(result.handover_at)]))
    print("\nCellBricks (MPTCP):")
    print(timeline(result.cb_mbps, markers=[int(result.handover_at)]))
    print(f"\n{'bin':>9s} {'MNO Mbps':>9s} {'CB Mbps':>9s}")
    for t, mno, cb in zip(result.timestamps, result.mno_mbps,
                          result.cb_mbps):
        print(f"[{t - 1:3.0f},{t:3.0f}) {mno:9.2f} {cb:9.2f}")
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from repro.emulation import run_figure9

    result = run_figure9(duration=args.duration)
    header = "elapsed(s) " + "".join(f"{name:>12s}" for name in result.series)
    print(header)
    for index, window in enumerate(result.windows):
        print(f"{window:>9d}  " + "".join(
            f"{series[index]:>11.1f}%" for series in result.series.values()))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from repro.analysis import sparkline
    from repro.emulation import run_figure10, run_figure10_single_drive

    if args.single_drive:
        result = run_figure10_single_drive(
            duration=args.duration, switch_at=args.duration / 2)
        print("single drive crossing the ~00:30 policy switch "
              f"at t={args.duration / 2:.0f}s:")
    else:
        result = run_figure10(duration=args.duration)
    top = max(result.night_mbps) if result.night_mbps else 1.0
    print("day   " + sparkline(result.day_mbps[:100], maximum=top))
    print("night " + sparkline(result.night_mbps[:100], maximum=top))
    print(f"{'':8s}{'avg Mbps':>9s} {'std':>7s} {'peak':>7s}")
    print(f"{'day':8s}{result.day_avg:9.2f} {result.day_std:7.2f} "
          f"{result.day_peak:7.2f}")
    print(f"{'night':8s}{result.night_avg:9.2f} {result.night_std:7.2f} "
          f"{result.night_peak:7.2f}")
    return 0


def _cmd_broker_scale(args: argparse.Namespace) -> int:
    """Sweep concurrent attaches x shard count through one brokerd.

    Each (rat, concurrency) pair runs a serial single-shard baseline
    cell plus pipelined cells at every ``--shards`` value; the report
    (``BENCH_broker_scale.json``) carries every cell and the pipeline
    vs baseline speedups.  ``--smoke`` runs the seeded CI subset and
    fails if attaches/sec regresses more than 20% against the
    committed baseline (``benchmarks/baselines/broker_scale_baseline
    .json``)."""
    import json

    from repro.testbed.broker_scale import run_sweep, speedups

    rats = ("lte", "5g") if args.rat == "both" else (args.rat,)
    if args.smoke:
        concurrencies = (64,)
        shard_counts = (8,)
    else:
        concurrencies = tuple(int(c) for c in args.concurrency.split(","))
        shard_counts = tuple(int(s) for s in args.shards.split(","))
    report = run_sweep(rats=rats, concurrencies=concurrencies,
                       shard_counts=shard_counts, sites=args.sites,
                       adaptive_window=args.adaptive_window)

    print(f"{'rat':4s} {'N':>4s} {'mode':9s} {'shards':>6s} {'ok':>4s} "
          f"{'p50 ms':>8s} {'p99 ms':>8s} {'att/s':>8s}")
    for cell in report["cells"]:
        mode = "pipeline" if cell["pipeline"] else "serial"
        print(f"{cell['rat']:4s} {cell['concurrency']:4d} {mode:9s} "
              f"{cell['shards']:6d} "
              f"{cell['attached']:4d} {cell['p50_ms']:8.2f} "
              f"{cell['p99_ms']:8.2f} {cell['attaches_per_sec']:8.1f}")
    for row in report["speedups"]:
        print(f"speedup {row['rat']} N={row['concurrency']} "
              f"shards={row['shards']}: {row['speedup']:.2f}x "
              f"({row['baseline_attaches_per_sec']:.1f} -> "
              f"{row['pipeline_attaches_per_sec']:.1f} att/s)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")

    if not args.smoke:
        return 0
    # CI regression gate: every smoke cell must hold >= 80% of the
    # committed baseline's attaches/sec.
    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)["cells"]
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; gate skipped")
        return 0
    failed = False
    for cell in report["cells"]:
        key = (f"{cell['rat']}/{cell['concurrency']}/"
               f"{'pipeline' if cell['pipeline'] else 'serial'}/"
               f"{cell['shards']}")
        floor = baseline.get(key, 0.0) * 0.8
        if cell["attaches_per_sec"] < floor:
            print(f"FAIL {key}: {cell['attaches_per_sec']:.1f} att/s "
                  f"< 80% of baseline {baseline[key]:.1f}")
            failed = True
        else:
            print(f"ok   {key}: {cell['attaches_per_sec']:.1f} att/s "
                  f"(baseline {baseline.get(key, 0.0):.1f})")
    if cell := next((c for c in report["speedups"]
                     if c["speedup"] < 3.0 and c["shards"] >= 8), None):
        print(f"FAIL speedup {cell['rat']} N={cell['concurrency']}: "
              f"{cell['speedup']:.2f}x < 3x")
        failed = True
    return 1 if failed else 0


def _cmd_broker_ha(args: argparse.Namespace) -> int:
    """High-availability drill for the distributed broker (BROKER-HA).

    Deploys the broker's SAP shards onto network-attached shard hosts
    (primary + warm replica each), runs attach/revoke churn, and kills
    shard hosts mid-storm and mid-rebalance.  Gates: attach success
    >= 99%, zero unauthorized session seconds, a pre-crash nonce still
    denied after failover, and crash-to-promoted recovery inside the
    failure detector's bound.  ``--smoke`` is the seeded CI subset."""
    import json

    from repro.testbed.broker_ha import run_suite

    rats = ("lte", "5g") if args.rat == "both" else (args.rat,)
    attaches = 80 if args.smoke else args.attaches
    report = run_suite(rats=rats, attaches=attaches, shards=args.shards,
                       spares=args.spares, seed=args.seed,
                       revoke_every=args.revoke_every)

    for cell in report["cells"]:
        print(f"{cell['rat']}: {cell['successes']}/{cell['attempts']} "
              f"attaches ({cell['success_rate']:.2%}), "
              f"{cell['failovers_total']} failovers "
              f"(recovery {max(cell['recovery_s'], default=0.0):.2f}s), "
              f"{cell['rebalances_total']} rebalances "
              f"(moved {sum(r['moved'] for r in cell['rebalance_log'])}), "
              f"replay denied: {cell['replay_denied_across_failover']}, "
              f"unauthorized s: {cell['unauthorized_session_seconds']}")
    for gate in report["gates"]:
        status = "ok  " if gate["pass"] else "FAIL"
        print(f"{status} {gate['gate']}: {gate['value']} "
              f"(threshold {gate['threshold']})")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0 if report["pass"] else 1


def _cmd_fleet_drive(args: argparse.Namespace) -> int:
    """Fleet drive over the geometric RAN (FLEET-DRIVE).

    A fleet of UEs drives a corridor of randomly-assigned operator
    cells; emergent A3 handovers feed ``MobilityManager.switch_to``.
    Scoped cells re-attach with broker-signed mobility grants (target:
    zero broker auth RPCs per handover); scopes-disabled cells pay a
    full authReqU per handover.  Mid-drive one operator's towers go
    dark, producing an attach storm.  Gates: scoped auth-RPCs == 0 and
    < baseline, denial probes (replay / bad MAC / out-of-scope /
    expired) all denied, zero unauthorized session seconds, and a
    deterministic MTTHO digest.  ``--smoke`` is the seeded CI subset."""
    import json

    from repro.testbed.fleet_drive import run_fleet_suite

    rats = ("lte", "5g") if args.rat == "both" else (args.rat,)
    ues = 4 if args.smoke else args.ues
    duration = 20.0 if args.smoke else args.duration
    report = run_fleet_suite(rats=rats, ues=ues, duration=duration,
                             seed=args.seed, sites=args.sites)

    for cell in report["cells"]:
        mode = "scoped" if cell["scoped"] else "plain "
        mttho = cell["mttho_s"]["fleet_mean_s"]
        print(f"{cell['rat']:>3} {mode}: "
              f"{cell['operator_handovers']} op-handovers "
              f"({cell['ran_handovers']} RAN), "
              f"auth RPCs {cell['broker_auth_rpcs']} "
              f"({cell['rpcs_per_handover'] or 0:.2f}/ho), "
              f"MTTHO {mttho if mttho is not None else float('nan'):.1f}s, "
              f"stall p50 {cell['stall_ms']['p50'] or 0:.1f}ms "
              f"p95 {cell['stall_ms']['p95'] or 0:.1f}ms, "
              f"storm ho {cell['storm'].get('handovers', 0)} "
              f"rpcs {cell['storm'].get('broker_auth_rpcs', 0)}, "
              f"unauth {cell['unauthorized_session_s']}s")
    for gate, ok in report["gates"].items():
        print(f"{'ok  ' if ok else 'FAIL'} {gate}")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0 if report["pass"] else 1


def _cmd_megaload(args: argparse.Namespace) -> int:
    """Population-scale workload over the event engine (MEGALOAD).

    Drives ``--ues`` scripted UEs across ``--sites`` bTelco sites with
    arrival, mobility, and diurnal models, once per requested engine
    (``legacy`` = the pre-optimization event core, ``optimized`` =
    batched tick-calendar stepping + adaptive broker window + heap
    compaction).  The report (``BENCH_megaload.json``) carries each
    cell's deterministic workload digest and wall-clock figures plus
    the optimized-vs-legacy speedup.  ``--real-fraction`` samples that
    slice of the population into the full-fidelity SAP cohort
    (``--real-rat``/``--real-sites`` shape it) and turns on measured
    crypto sim-cost charging; ``--xl`` runs the 10^6-UE single-engine
    cell (non-CI).  ``--smoke`` gates for CI on machine-independent
    facts: the workload digests must match the committed baseline
    exactly, the in-process speedup must hold >= 2x, the SoA
    RSS-per-UE profile must stay under the baseline ceiling, and a
    mixed-fidelity micro-cell must agree scripted-vs-charged on broker
    service time (raw wall-clock is reported but never gated)."""
    import json

    from repro.testbed.megaload import run_cell, run_megaload

    engines = (("optimized", "legacy") if args.engine == "both"
               else (args.engine,))
    if args.xl:
        # The 10^6-UE memory/throughput profile: optimized engine only
        # (a 10^6-UE legacy heap takes minutes for no extra signal).
        args.ues = max(args.ues, 1_000_000)
        engines = ("optimized",)
    kpi_store = None
    if args.kpi_output and not args.smoke:
        from repro.obs.fleet import FleetKpiStore

        kpi_store = FleetKpiStore("megaload-cohorts")
    report = run_megaload(ues=args.ues, sites=args.sites,
                          duration=args.duration, tick=args.tick,
                          seed=args.seed, engines=engines,
                          real_fraction=args.real_fraction,
                          real_rat=args.real_rat,
                          real_sites=args.real_sites,
                          kpi_store=kpi_store)

    print(f"{'engine':10s} {'UEs/s':>10s} {'actions/s':>11s} "
          f"{'wall s':>8s} {'s/sim-s':>9s} {'RSS MB':>8s} "
          f"{'events':>9s} {'compact':>7s}")
    for cell in report["cells"]:
        perf = cell["perf"]
        print(f"{cell['engine']:10s} {perf['ues_per_sec']:10.0f} "
              f"{perf['actions_per_sec']:11.0f} {perf['wall_s']:8.2f} "
              f"{perf['wall_per_sim_second']:9.5f} "
              f"{perf['peak_rss_mb']:8.1f} "
              f"{perf['events_processed']:9d} "
              f"{perf['heap_compactions']:7d}")
        workload = cell["workload"]
        print(f"  attach_ok={workload['attach_ok']} "
              f"failures={workload['attach_failures']} "
              f"moves={workload['moves']} "
              f"idle_detaches={workload['idle_detaches']} "
              f"batches={workload['broker_batches']} "
              f"full_flushes={workload['broker_full_flushes']} "
              f"rss/ue={perf['rss_per_ue_bytes']:.0f}B "
              f"digest={cell['digest'][:12]}")
        cohort = workload.get("real_cohort")
        if cohort:
            print(f"  real cohort: {cohort['count']} {cohort['rat']} UEs "
                  f"on {cohort['sites']} sites "
                  f"attach_ok={cohort['attach_ok']} "
                  f"failures={cohort['attach_failures']} "
                  f"attach p50={cohort['attach_ms_p50']:.1f}ms "
                  f"p99={cohort['attach_ms_p99']:.1f}ms")
    if "speedup" in report:
        row = report["speedup"]
        print(f"speedup optimized vs legacy: {row['speedup']:.2f}x "
              f"({row['legacy_ues_per_sec']:.0f} -> "
              f"{row['optimized_ues_per_sec']:.0f} UEs/s)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if kpi_store is not None:
        kpi_store.write_json(args.kpi_output)
        print(f"wrote {args.kpi_output}")

    if not args.smoke:
        return 0
    # CI regression gate.  Wall-clock depends on the runner, so the
    # gate checks machine-independent facts only: exact digest match
    # per engine (determinism + workload-logic regressions), the
    # in-process optimized/legacy throughput ratio (>= 2x), the SoA
    # RSS-per-UE ceiling, and scripted-vs-charged service-time
    # agreement on a mixed-fidelity micro-cell.
    failed = False
    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; gate skipped")
        return 0
    if args.real_fraction > 0:
        print("warn digest gate skipped: --real-fraction digests are "
              "machine-dependent (measured crypto costs)")
    else:
        baseline_digests = baseline.get("digests", {})
        for cell in report["cells"]:
            expected = baseline_digests.get(cell["engine"])
            if expected is None:
                print(f"warn {cell['engine']}: no baseline digest")
                continue
            if cell["digest"] != expected:
                print(f"FAIL {cell['engine']}: digest "
                      f"{cell['digest'][:12]} != baseline "
                      f"{expected[:12]} (workload outcome changed or "
                      f"determinism broke)")
                failed = True
            else:
                print(f"ok   {cell['engine']}: digest matches baseline")
    min_speedup = baseline.get("min_speedup", 2.0)
    if "speedup" in report:
        if report["speedup"]["speedup"] < min_speedup:
            print(f"FAIL speedup {report['speedup']['speedup']:.2f}x "
                  f"< {min_speedup:.1f}x")
            failed = True
        else:
            print(f"ok   speedup {report['speedup']['speedup']:.2f}x "
                  f">= {min_speedup:.1f}x")
    max_rss_per_ue = baseline.get("max_rss_per_ue_bytes")
    if max_rss_per_ue is not None:
        # The first cell ran in a cold process (run_megaload leads with
        # optimized), so its peak-RSS delta is the SoA footprint.
        cell = report["cells"][0]
        rss = cell["perf"]["rss_per_ue_bytes"]
        if cell["engine"] != "optimized":
            print("warn rss gate skipped: first cell is not optimized")
        elif rss > max_rss_per_ue:
            print(f"FAIL rss_per_ue {rss:.1f} B > ceiling "
                  f"{max_rss_per_ue:.0f} B")
            failed = True
        else:
            print(f"ok   rss_per_ue {rss:.1f} B <= ceiling "
                  f"{max_rss_per_ue:.0f} B")
    failed |= _megaload_mixed_gate(args, json)
    return 1 if failed else 0


def _megaload_mixed_gate(args: argparse.Namespace, json) -> bool:
    """The mixed-fidelity leg of ``megaload --smoke``.

    Runs a micro-cell with a real SAP cohort (both fidelities share one
    clock) and checks facts that hold on any machine: the cohort
    completes real attaches, and the scripted broker's accumulated busy
    time equals requests x the measured per-attach crypto cost (the
    sim-cost charging bridge is applied consistently).  Also emits the
    per-cohort KPI JSON artifact when ``--kpi-output`` is set."""
    from repro.testbed.megaload import run_cell

    kpi_store = None
    if args.kpi_output:
        from repro.obs.fleet import FleetKpiStore

        kpi_store = FleetKpiStore("megaload-cohorts")
    mixed = run_cell(
        ues=min(args.ues, 20_000), sites=min(args.sites, 64),
        duration=20.0, tick=args.tick, seed=args.seed,
        engine="optimized", real_fraction=0.002,
        real_rat=args.real_rat, real_sites=2, kpi_store=kpi_store)
    failed = False
    cohort = mixed["workload"]["real_cohort"]
    if cohort["attach_ok"] < 1:
        print(f"FAIL mixed cell: no real-cohort attach completed "
              f"({cohort['attach_failures']} failures)")
        failed = True
    else:
        print(f"ok   mixed cell: {cohort['attach_ok']} real "
              f"{cohort['rat']} attaches "
              f"(p50 {cohort['attach_ms_p50']:.1f} ms)")
    perf = mixed["perf"]
    charged = perf["broker_service_cost_s"] \
        * mixed["workload"]["broker_requests"]
    busy = perf["broker_busy_s"]
    # busy_s is rounded to 1e-6 in the report; allow that plus float
    # accumulation slack across ~1e4 batches.
    if abs(busy - charged) > 1e-5 + 1e-9 * abs(charged):
        print(f"FAIL mixed cell: scripted busy {busy:.6f} s != charged "
              f"{charged:.6f} s")
        failed = True
    else:
        print(f"ok   mixed cell: scripted busy {busy:.6f} s == "
              f"charged cost x {mixed['workload']['broker_requests']} "
              f"requests")
    if kpi_store is not None:
        kpi_store.write_json(args.kpi_output)
        print(f"wrote {args.kpi_output}")
    return failed


#: curated dashboard rows per observed bench (everything else is still
#: in the KPI JSON; these are the ones worth terminal space).
_OBSERVE_DASH_KEYS = {
    "megaload": ["workload.arrived_per_s", "workload.attach_ok_per_s",
                 "workload.attach_failures_per_s",
                 "workload.idle_detaches_per_s", "broker.requests_per_s",
                 "broker.batches_per_s", "sites.attached_total",
                 "sites.max_load", "sites.loaded_sites"],
    "broker-ha": ["brokerd.approved_per_s", "brokerd.denied_per_s",
                  "frontend.failovers", "frontend.degraded_denials",
                  "frontend.forward_giveups", "shards.pending_forwards"],
}

#: collected-vs-bare throughput floor for the --smoke overhead gate.
OBSERVE_OVERHEAD_FLOOR = 0.95


def _cmd_observe(args: argparse.Namespace) -> int:
    """Fleet observatory: live KPI aggregation over a running bench.

    Attaches a read-only :class:`~repro.obs.fleet.KpiCollector` to the
    chosen bench (``megaload`` or ``broker-ha``), samples windowed KPIs
    on the *sim clock* (attaches/sec, per-shard load, replication lag,
    degraded denials), and renders them as a terminal dashboard plus
    deterministic JSON (and optional HTML) artifacts.  ``--smoke``
    gates on machine-independent facts — the collected workload digest
    must equal the collector-free digest (the collector is passive) and
    two seeded runs must emit byte-identical KPI JSON — plus one
    in-process wall-clock fact: collected UEs/sec must stay within 5%
    of a collector-free run on the same machine."""
    import json

    from repro.obs.fleet import FleetKpiStore

    if args.bench == "megaload":
        return _observe_megaload(args, json, FleetKpiStore)
    return _observe_broker_ha(args, json, FleetKpiStore)


def _observe_megaload(args, json, store_cls) -> int:
    from repro.testbed.megaload import run_cell

    ues = 20_000 if args.smoke else args.ues
    duration = 30.0 if args.smoke else args.duration
    interval = args.interval if args.interval else 1.0
    config = dict(ues=ues, sites=args.sites, duration=duration,
                  seed=args.seed, engine="optimized")

    store = store_cls("megaload")
    cell = run_cell(kpi_store=store, kpi_interval=interval, **config)
    _print_observe_summary("megaload", store)

    failed = False
    if args.smoke:
        # Passivity: the collected workload digest must equal the
        # collector-free one, and the collector-free run doubles as the
        # overhead baseline.
        bare = run_cell(**config)
        if cell["digest"] != bare["digest"]:
            print(f"FAIL digest: collected {cell['digest'][:12]} != "
                  f"bare {bare['digest'][:12]} (collector perturbed "
                  f"the workload)")
            failed = True
        else:
            print(f"ok   digest matches collector-free run "
                  f"({cell['digest'][:12]})")
        # Determinism: a second seeded collected run must emit
        # byte-identical KPI JSON.
        store2 = store_cls("megaload")
        run_cell(kpi_store=store2, kpi_interval=interval, **config)
        if store.to_json() != store2.to_json():
            print("FAIL kpi json differs between two seeded runs")
            failed = True
        else:
            print(f"ok   kpi json byte-identical across two runs "
                  f"({len(store.rows)} windows)")
        # Overhead: one sampling event per window must not move
        # throughput measurably.  Wall-clock is noisy, so a miss gets
        # one fresh pair before failing.
        ratio = cell["perf"]["ues_per_sec"] / max(
            bare["perf"]["ues_per_sec"], 1e-9)
        if ratio < OBSERVE_OVERHEAD_FLOOR:
            collected2 = run_cell(kpi_store=store_cls("retry"),
                                  kpi_interval=interval, **config)
            bare2 = run_cell(**config)
            ratio = max(ratio, collected2["perf"]["ues_per_sec"]
                        / max(bare2["perf"]["ues_per_sec"], 1e-9))
        if ratio < OBSERVE_OVERHEAD_FLOOR:
            print(f"FAIL collector overhead: {ratio:.3f}x bare "
                  f"throughput < {OBSERVE_OVERHEAD_FLOOR}")
            failed = True
        else:
            print(f"ok   collector overhead: {ratio:.3f}x bare "
                  f"throughput (floor {OBSERVE_OVERHEAD_FLOOR})")

    report = {
        "bench": "megaload",
        "config": {**config, "kpi_interval_s": interval},
        "digest": cell["digest"],
        "kpis": json.loads(store.to_json()),
    }
    _write_observe_artifacts(args, json, report, [store])
    return 1 if failed else 0


def _observe_broker_ha(args, json, store_cls) -> int:
    from repro.testbed.broker_ha import run_cell

    rats = ("lte", "5g") if args.rat == "both" else (args.rat,)
    attaches = 80 if args.smoke else 150
    interval = args.interval if args.interval else 0.5
    failed = False
    stores, cells = [], []
    for rat in rats:
        store = store_cls(f"broker-ha-{rat}")
        cell = run_cell(rat, attaches=attaches, seed=args.seed,
                        kpi_store=store, kpi_interval=interval)
        stores.append(store)
        cells.append(cell)
        _print_observe_summary("broker-ha", store)
        print(f"{rat}: {cell['successes']}/{cell['attempts']} attaches, "
              f"{cell['failovers_total']} failovers, "
              f"{cell['degraded_denials']} degraded denials")
        if args.smoke:
            store2 = store_cls(f"broker-ha-{rat}")
            run_cell(rat, attaches=attaches, seed=args.seed,
                     kpi_store=store2, kpi_interval=interval)
            if store.to_json() != store2.to_json():
                print(f"FAIL {rat}: kpi json differs between two "
                      f"seeded runs")
                failed = True
            else:
                print(f"ok   {rat}: kpi json byte-identical across two "
                      f"runs ({len(store.rows)} windows)")

    report = {
        "bench": "broker-ha",
        "config": {"attaches": attaches, "seed": args.seed,
                   "kpi_interval_s": interval, "rats": list(rats)},
        "cells": [{"rat": cell["rat"],
                   "success_rate": cell["success_rate"],
                   "failovers_total": cell["failovers_total"],
                   "degraded_denials": cell["degraded_denials"],
                   "kpis": json.loads(store.to_json())}
                  for cell, store in zip(cells, stores)],
    }
    _write_observe_artifacts(args, json, report, stores)
    return 1 if failed else 0


def _print_observe_summary(bench: str, store) -> None:
    curated = [key for key in _OBSERVE_DASH_KEYS[bench]
               if key in set(store.keys())]
    extra = sorted(key for key in store.keys()
                   if key.endswith("repl_lag_s") or key.endswith("health"))
    print(store.dashboard(keys=curated + extra))


def _write_observe_artifacts(args, json, report: dict, stores) -> None:
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")
        print(f"wrote {args.output}")
    if args.html:
        parts = [store.to_html() for store in stores]
        with open(args.html, "w") as fh:
            fh.write("\n<hr>\n".join(parts))
        print(f"wrote {args.html}")


def _cmd_churn(args: argparse.Namespace) -> int:
    """Attach-churn the broker and print its lifecycle counters.

    Runs ``--attaches`` full SAP exchanges against one BrokerSap with a
    short session TTL, rotating subscribers and (optionally) revoking
    some mid-run, then reports the counters and peak state sizes — the
    bounded-memory evidence for the session-lifecycle machinery.
    """
    from repro.core.qos import QosCapabilities
    from repro.core.sap import (
        BrokerSap,
        BrokerSubscriber,
        BtelcoSap,
        BtelcoSapConfig,
        SapError,
        UeSap,
        UeSapCredentials,
    )
    from repro.crypto import CertificateAuthority
    from repro.crypto.keypool import pooled_keypair

    ca = CertificateAuthority(key=pooled_keypair(930))
    broker_key = pooled_keypair(931)
    telco_key = pooled_keypair(932)
    ue_key = pooled_keypair(933)
    cert = ca.issue("t.churn", "btelco", telco_key.public_key)
    broker = BrokerSap(id_b="b.churn", key=broker_key,
                       ca_public_key=ca.public_key, session_ttl=args.ttl)
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t.churn", key=telco_key, certificate=cert,
        qos_capabilities=QosCapabilities(), ca_public_key=ca.public_key))
    ues = []
    for index in range(args.subscribers):
        id_u = f"sub-{index}"
        broker.enroll(BrokerSubscriber(id_u=id_u,
                                       public_key=ue_key.public_key))
        ues.append(UeSap(UeSapCredentials(
            id_u=id_u, id_b="b.churn", ue_key=ue_key,
            broker_public_key=broker_key.public_key)))

    peak_nonces = peak_grants = 0
    for attach in range(args.attaches):
        now = attach * args.interval
        index = attach % args.subscribers
        req_t = telco.augment_request(
            ues[index].craft_request("t.churn"))
        try:
            broker.process_request(req_t, now=now)
        except SapError:
            pass
        if args.revoke_every and (attach + 1) % args.revoke_every == 0:
            broker.revoke(f"sub-{index}")
            # A real broker re-enrolls under a fresh identity/key; reuse
            # the slot so the churn keeps exercising the same pool.
            broker.enroll(BrokerSubscriber(id_u=f"sub-{index}",
                                           public_key=ue_key.public_key))
        peak_nonces = max(peak_nonces, len(broker._seen_nonces))
        peak_grants = max(peak_grants, len(broker.grants))

    stats = broker.stats()
    active_bound = int(args.ttl / args.interval) + 1
    print(f"attach churn: {args.attaches} attaches, ttl {args.ttl:.0f}s, "
          f"{args.interval:.2f}s apart, {args.subscribers} subscribers")
    for key in ("attach_ok", "replay_hits", "grants_active",
                "grants_expired", "grants_revoked", "replay_cache_size"):
        print(f"  {key:18s} {stats[key]}")
    for cause, count in sorted(stats["attach_denied"].items()):
        print(f"  denied[{cause}]    {count}")
    print(f"  peak replay cache  {peak_nonces} (bound {active_bound})")
    print(f"  peak grants        {peak_grants} (bound {active_bound})")
    bounded = peak_nonces <= active_bound and peak_grants <= active_bound
    print("state bounded by active sessions: "
          + ("yes" if bounded else "NO - UNBOUNDED GROWTH"))
    return 0 if bounded else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Attach/revoke churn under a fault script; print (or emit as JSON)
    the reliability metrics and fail if a safety invariant is violated.

    ``--smoke`` runs the seeded CI configuration: 5% steady loss on
    every link, a broker-link outage and a broker brown-out mid-run,
    revocations every 10 attaches — then checks the acceptance bars
    (≥95%% attach success under faults, unauthorized-session-seconds
    exactly 0) and writes ``BENCH_chaos.json``.
    """
    import json

    from repro.emulation import (
        ChaosSchedule,
        brownout,
        loss_burst,
        outage,
        run_chaos,
    )

    if args.smoke:
        args.attaches = min(args.attaches, 150)
        args.loss = args.loss or 0.05
        args.revoke_every = args.revoke_every or 10
        if args.outage_at == 0.0:
            args.outage_at, args.outage_len = 2.0, 2.0
        if args.brownout_at == 0.0:
            args.brownout_at, args.brownout_len = 8.0, 2.0
    if args.rat == "5g" and args.output == "BENCH_chaos.json":
        args.output = "BENCH_5g.json"

    schedule = ChaosSchedule()
    if args.outage_len > 0.0 and args.outage_at > 0.0:
        schedule.add(outage(args.outage_at, args.outage_len,
                            target="*-broker"))
    if args.burst_loss > 0.0 and args.burst_at > 0.0:
        schedule.add(loss_burst(args.burst_at, args.burst_len,
                                args.burst_loss))
    if args.brownout_len > 0.0 and args.brownout_at > 0.0:
        schedule.add(brownout(args.brownout_at, args.brownout_len,
                              factor=args.brownout_factor))

    report = run_chaos(attaches=args.attaches, schedule=schedule,
                       revoke_every=args.revoke_every, seed=args.seed,
                       base_loss=args.loss, rat=args.rat)

    payload = report.to_dict()
    violations = []
    if report.unauthorized_session_seconds != 0.0:
        violations.append(
            "unauthorized_session_seconds = "
            f"{report.unauthorized_session_seconds} (must be 0)")
    # The 5G parity port holds a tighter bar than the LTE original: the
    # seeded smoke must land >=99% attach success under the fault script.
    success_bar = 0.99 if args.rat == "5g" else 0.95
    if args.smoke and report.success_rate < success_bar:
        violations.append(
            f"success_rate = {report.success_rate:.3f} (< {success_bar})")
    payload["violations"] = violations

    if args.json or args.smoke:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.smoke:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
    if not args.json:
        print(f"chaos churn: {report.attempts} attaches, "
              f"{len(schedule)} scripted faults, "
              f"steady loss {args.loss:.0%}, seed {args.seed}")
        print(f"  success rate        {report.success_rate:7.2%} "
              f"({report.successes}/{report.attempts})")
        print(f"  attach p50 / p99    {report.attach_p50_ms:.2f} / "
              f"{report.attach_p99_ms:.2f} ms")
        print(f"  retransmissions     {report.retransmissions} "
              f"(nas {report.nas_retransmissions}, accept "
              f"{report.accept_retransmissions}, signaling "
              f"{report.signaling_retransmissions})")
        print(f"  revocations         {report.revocations} "
              f"(batches acked "
              f"{report.broker_stats['revocation_batches_acked']}, "
              f"retried "
              f"{report.broker_stats['revocation_batches_retried']}, "
              f"outstanding "
              f"{report.broker_stats['revocation_batches_outstanding']})")
        hist = report.latency_histogram
        if hist.get("count"):
            print(f"  latency histogram   n={hist['count']}, mean "
                  f"{hist['mean']:.2f} ms, p50/p99 {hist['p50']:.2f}/"
                  f"{hist['p99']:.2f} ms, max {hist['max']:.2f} ms")
        print(f"  unauthorized        "
              f"{report.unauthorized_session_seconds:.3f} session-seconds")
        for cause, count in sorted(report.failure_causes.items()):
            print(f"  failed[{cause}]  {count}")
    for violation in violations:
        print(f"INVARIANT VIOLATED: {violation}")
    return 1 if violations else 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a scaled-down version of every paper experiment and emit one
    self-contained markdown report (the artifact-evaluation one-shot)."""
    from repro.emulation import (
        render_table1,
        run_figure8,
        run_figure10,
        run_table1,
    )
    from repro.testbed import run_figure7

    scale = args.scale
    lines = ["# CellBricks reproduction report", ""]
    lines.append(f"Generated by `python -m repro report --scale {scale}`; "
                 "all runs seeded and deterministic.")
    lines.append("")

    lines.append("## Fig 7 — attachment latency (ms)")
    lines.append("")
    lines.append("| placement | arch | total | agw+brokerd | enb | ue | other |")
    lines.append("|---|---|---|---|---|---|---|")
    for result in run_figure7(trials=max(5, int(100 * scale))):
        lines.append(
            f"| {result.placement} | {result.arch} | {result.total_ms:.2f} "
            f"| {result.agw_brokerd_ms:.2f} | {result.enb_ms:.2f} "
            f"| {result.ue_ms:.2f} | {result.other_ms:.2f} |")
    lines.append("")

    lines.append("## Table 1 — application performance")
    lines.append("")
    lines.append("```")
    lines.append(render_table1(run_table1(duration_scale=scale)))
    lines.append("```")
    lines.append("")

    lines.append("## Fig 8 — throughput around a handover (Mbps/s bins)")
    fig8 = run_figure8()
    window = slice(max(0, int(fig8.handover_at) - 4),
                   int(fig8.handover_at) + 6)
    lines.append("")
    lines.append("| t (s) | MNO | CellBricks |")
    lines.append("|---|---|---|")
    for t, mno, cb in zip(fig8.timestamps[window], fig8.mno_mbps[window],
                          fig8.cb_mbps[window]):
        marker = " ← handover" if t - 1 <= fig8.handover_at < t else ""
        lines.append(f"| {t - 1:.0f}–{t:.0f}{marker} | {mno:.2f} | {cb:.2f} |")
    lines.append("")

    lines.append("## Fig 10 — day vs night (downtown)")
    fig10 = run_figure10(duration=max(120.0, 500.0 * scale))
    lines.append("")
    lines.append("| | avg Mbps | std | peak |")
    lines.append("|---|---|---|---|")
    lines.append(f"| day | {fig10.day_avg:.2f} | {fig10.day_std:.2f} "
                 f"| {fig10.day_peak:.2f} |")
    lines.append(f"| night | {fig10.night_avg:.2f} | {fig10.night_std:.2f} "
                 f"| {fig10.night_peak:.2f} |")
    lines.append("")
    lines.append("Paper references: Fig 7 36.85/31.68 and 166.48/98.62 ms; "
                 "Table 1 slowdowns −1.61%…+3.06%; Fig 10 day 1.03 vs "
                 "night 14.95 Mbps.")

    report = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate CellBricks (SIGCOMM'21) experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig7", help="attachment latency breakdown")
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--rat", choices=("lte", "5g"), default="lte",
                   help="radio generation of the control plane under test")
    p.add_argument("--trace", action="store_true",
                   help="measure the per-leg breakdown from recorded "
                        "span trees instead of module-time accounting")
    p.add_argument("--obs-output", default=None,
                   help="with --trace: write per-leg p50/p99 JSON here "
                        "(e.g. BENCH_obs.json)")
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("attach", help="one attach-benchmark cell")
    p.add_argument("--arch", choices=("BL", "CB"), default="CB")
    p.add_argument("--placement", default="us-west-1")
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--rat", choices=("lte", "5g"), default="lte")
    p.set_defaults(func=_cmd_attach)

    p = sub.add_parser("table1", help="application performance table")
    p.add_argument("--scale", type=float, default=1.0,
                   help="duration scale factor")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--routes", default=None,
                   help="comma-separated subset, e.g. downtown,highway")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig8", help="throughput around a handover")
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("fig9", help="attachment-latency factor analysis")
    p.add_argument("--duration", type=float, default=240.0)
    p.set_defaults(func=_cmd_fig9)

    p = sub.add_parser("report", help="run everything, emit one markdown "
                                      "reproduction report")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--output", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("churn", help="attach-churn the broker; print "
                                     "lifecycle counters and peak state")
    p.add_argument("--attaches", type=int, default=2000)
    p.add_argument("--ttl", type=float, default=50.0,
                   help="broker session TTL (seconds)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="sim-time spacing between attaches (seconds)")
    p.add_argument("--subscribers", type=int, default=64,
                   help="distinct subscribers to rotate through")
    p.add_argument("--revoke-every", type=int, default=0,
                   help="revoke the attaching subscriber every N attaches")
    p.set_defaults(func=_cmd_churn)

    p = sub.add_parser("chaos", help="attach/revoke churn under fault "
                                     "injection; check reliability "
                                     "invariants")
    p.add_argument("--attaches", type=int, default=200)
    p.add_argument("--loss", type=float, default=0.0,
                   help="steady loss rate on every signaling link")
    p.add_argument("--outage-at", type=float, default=0.0,
                   help="start (s) of a broker-link outage (0 = none)")
    p.add_argument("--outage-len", type=float, default=2.0)
    p.add_argument("--burst-at", type=float, default=0.0,
                   help="start (s) of an all-links loss burst (0 = none)")
    p.add_argument("--burst-len", type=float, default=2.0)
    p.add_argument("--burst-loss", type=float, default=0.2)
    p.add_argument("--brownout-at", type=float, default=0.0,
                   help="start (s) of a broker brown-out (0 = none)")
    p.add_argument("--brownout-len", type=float, default=2.0)
    p.add_argument("--brownout-factor", type=float, default=10.0,
                   help="processing-cost multiplier during the brown-out")
    p.add_argument("--revoke-every", type=int, default=0,
                   help="revoke the subscriber every N successful attaches")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rat", choices=("lte", "5g"), default="lte",
                   help="run the churn over the LTE or the 5G stack")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON on stdout")
    p.add_argument("--smoke", action="store_true",
                   help="seeded CI configuration; writes --output and "
                        "fails on invariant violations")
    p.add_argument("--output", default="BENCH_chaos.json",
                   help="smoke-report path (default BENCH_chaos.json, "
                        "or BENCH_5g.json with --rat 5g)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("trace", help="run a traced scenario and export "
                                     "its span tree")
    p.add_argument("--scenario", choices=("attach", "chaos"),
                   default="attach")
    p.add_argument("--arch", choices=("BL", "CB"), default="CB")
    p.add_argument("--placement", default="us-west-1")
    p.add_argument("--trials", type=int, default=20,
                   help="attach trials (scenario=attach)")
    p.add_argument("--attaches", type=int, default=150,
                   help="attach attempts (scenario=chaos)")
    p.add_argument("--loss", type=float, default=0.05,
                   help="steady loss rate (scenario=chaos)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rat", choices=("lte", "5g"), default="lte")
    p.add_argument("--format", choices=("jsonl", "chrome", "summary"),
                   default="summary")
    p.add_argument("--output", default=None,
                   help="write the export to a file instead of stdout")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("metrics", help="run a scenario metrics-only and "
                                       "print the fleet registry snapshot")
    p.add_argument("--scenario", choices=("attach", "chaos"),
                   default="attach")
    p.add_argument("--arch", choices=("BL", "CB"), default="CB")
    p.add_argument("--placement", default="us-west-1")
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--attaches", type=int, default=150)
    p.add_argument("--loss", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rat", choices=("lte", "5g"), default="lte")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("broker-scale", help="concurrent attaches x shard "
                                            "count through one brokerd")
    p.add_argument("--rat", choices=("lte", "5g", "both"), default="both",
                   help="which stack(s) to sweep (default both)")
    p.add_argument("--concurrency", default="16,64",
                   help="comma-separated concurrent-attach counts")
    p.add_argument("--shards", default="1,2,4,8",
                   help="comma-separated shard counts for pipeline cells")
    p.add_argument("--sites", type=int, default=16,
                   help="bTelco sites the UEs round-robin across")
    p.add_argument("--adaptive-window", action="store_true",
                   help="derive the pipeline batch window from observed "
                        "arrival rate instead of the fixed 2 ms")
    p.add_argument("--smoke", action="store_true",
                   help="seeded CI subset (N=64, 8 shards, both paths); "
                        "fails on >20%% attaches/sec regression vs the "
                        "committed baseline")
    p.add_argument("--baseline",
                   default="benchmarks/baselines/broker_scale_baseline.json",
                   help="baseline file for the --smoke regression gate")
    p.add_argument("--output", default="BENCH_broker_scale.json",
                   help="report path (default BENCH_broker_scale.json)")
    p.set_defaults(func=_cmd_broker_scale)

    p = sub.add_parser("broker-ha", help="kill shard hosts mid-storm; "
                       "gate attach success, replay denial, recovery")
    p.add_argument("--rat", choices=("lte", "5g", "both"), default="both",
                   help="control plane(s) to drill (default both)")
    p.add_argument("--attaches", type=int, default=150,
                   help="churned attaches per cell (default 150)")
    p.add_argument("--shards", type=int, default=2,
                   help="active shard hosts at start (default 2)")
    p.add_argument("--spares", type=int, default=1,
                   help="warm spare shard hosts for scale-out (default 1)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--revoke-every", type=int, default=25,
                   help="revoke+re-enroll after every N successes")
    p.add_argument("--smoke", action="store_true",
                   help="seeded CI subset (80 attaches, both RATs)")
    p.add_argument("--output", default="BENCH_broker_ha.json",
                   help="report path (default BENCH_broker_ha.json)")
    p.set_defaults(func=_cmd_broker_ha)

    p = sub.add_parser("fleet-drive", help="fleet of UEs over the "
                       "geometric RAN; gate scoped re-attach broker load")
    p.add_argument("--rat", choices=("lte", "5g", "both"), default="both",
                   help="control plane(s) to drive (default both)")
    p.add_argument("--ues", type=int, default=6,
                   help="fleet size, <= 64 (default 6)")
    p.add_argument("--duration", type=float, default=30.0,
                   help="drive duration in sim seconds (default 30)")
    p.add_argument("--sites", type=int, default=3,
                   help="bTelco operators along the corridor, <= 16 "
                        "(default 3)")
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--smoke", action="store_true",
                   help="seeded CI subset (4 UEs, 20 s drives)")
    p.add_argument("--output", default="BENCH_fleet_drive.json",
                   help="report path (default BENCH_fleet_drive.json)")
    p.set_defaults(func=_cmd_fleet_drive)

    p = sub.add_parser("megaload", help="population-scale workload over "
                                        "the event engine")
    p.add_argument("--ues", type=int, default=100_000,
                   help="simulated UE population (default 100000)")
    p.add_argument("--sites", type=int, default=256,
                   help="bTelco sites (default 256)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="arrival window in sim seconds, mapped onto one "
                        "compressed 24h day (default 60)")
    p.add_argument("--tick", type=float, default=0.05,
                   help="stepping quantum in sim seconds (default 0.05)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--engine", choices=("both", "optimized", "legacy"),
                   default="both",
                   help="which event-core path(s) to run (default both)")
    p.add_argument("--real-fraction", type=float, default=0.0,
                   help="fraction of the population run as full-fidelity "
                        "SAP UEs against a real pipelined brokerd; any "
                        "nonzero value also charges the scripted broker "
                        "the measured crypto cost (default 0)")
    p.add_argument("--real-rat", choices=("lte", "5g"), default="lte",
                   help="RAT for the real cohort (default lte)")
    p.add_argument("--real-sites", type=int, default=4,
                   help="real RAN sites the cohort's script folds onto "
                        "(default 4)")
    p.add_argument("--xl", action="store_true",
                   help="the 10^6-UE memory/throughput profile: raises "
                        "--ues to 1e6 and runs the optimized engine "
                        "only (minutes of wall time; not for CI)")
    p.add_argument("--kpi-output", default=None,
                   help="write per-cohort fleet KPI JSON here (sampled "
                        "from the first cell, or from the mixed "
                        "micro-cell under --smoke)")
    p.add_argument("--smoke", action="store_true",
                   help="CI gate: per-engine workload digests must match "
                        "the committed baseline, the optimized/legacy "
                        "speedup must hold >= 2x, RSS-per-UE must stay "
                        "under the baseline ceiling, and the mixed "
                        "micro-cell must agree scripted-vs-charged")
    p.add_argument("--baseline",
                   default="benchmarks/baselines/megaload_baseline.json",
                   help="baseline file for the --smoke gate")
    p.add_argument("--output", default="BENCH_megaload.json",
                   help="report path (default BENCH_megaload.json)")
    p.set_defaults(func=_cmd_megaload)

    p = sub.add_parser("observe", help="fleet observatory: windowed KPI "
                                       "aggregation over a running bench")
    p.add_argument("--bench", choices=("megaload", "broker-ha"),
                   default="megaload",
                   help="which bench to observe (default megaload)")
    p.add_argument("--rat", choices=("lte", "5g", "both"), default="both",
                   help="broker-ha only: control plane(s) (default both)")
    p.add_argument("--ues", type=int, default=100_000,
                   help="megaload population (default 100000; --smoke "
                        "uses 20000)")
    p.add_argument("--sites", type=int, default=256,
                   help="megaload bTelco sites (default 256)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="megaload arrival window in sim seconds "
                        "(default 60; --smoke uses 30)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--interval", type=float, default=0.0,
                   help="KPI window in sim seconds (default: 1.0 for "
                        "megaload, 0.5 for broker-ha)")
    p.add_argument("--smoke", action="store_true",
                   help="CI gates: collected digest == collector-free "
                        "digest, byte-identical KPI JSON across two "
                        "seeded runs, <= 5%% UEs/sec overhead")
    p.add_argument("--output", default="OBS_fleet.json",
                   help="KPI report path (default OBS_fleet.json)")
    p.add_argument("--html", default="",
                   help="also write an HTML dashboard snapshot here")
    p.set_defaults(func=_cmd_observe)

    p = sub.add_parser("fig10", help="day vs night rate limiting")
    p.add_argument("--duration", type=float, default=500.0)
    p.add_argument("--single-drive", action="store_true",
                   help="one drive crossing the midnight policy switch "
                        "instead of two separate runs")
    p.set_defaults(func=_cmd_fig10)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
