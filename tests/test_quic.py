"""Tests for the QUIC-style transport and its connection migration."""

import pytest

from repro.apps import IperfClient, IperfServer, KIND_QUIC
from repro.net import CellularPath, Simulator
from repro.net.quic import (
    QuicConnection,
    QuicListener,
    _StreamReceiver,
)


def make_path(**kwargs):
    sim = Simulator()
    path = CellularPath(sim, **kwargs)
    path.assign_ue_address()
    return sim, path


def handover(sim, path, at, prefix="10.129.0", gap=0.08, d=0.032):
    def go():
        path.detach(interruption_s=gap)
        sim.schedule(gap + d, path.attach, prefix)
    sim.schedule_at(at, go)


class TestStreamReceiver:
    def test_in_order(self):
        recv = _StreamReceiver()
        assert recv.receive(0, 100) == 100
        assert recv.receive(100, 50) == 50

    def test_duplicates_ignored(self):
        recv = _StreamReceiver()
        recv.receive(0, 100)
        assert recv.receive(0, 100) == 0
        assert recv.receive(20, 50) == 0

    def test_reorder_buffered(self):
        recv = _StreamReceiver()
        assert recv.receive(100, 100) == 0
        assert recv.receive(0, 100) == 200

    def test_overlap_partial(self):
        recv = _StreamReceiver()
        recv.receive(0, 100)
        assert recv.receive(50, 100) == 50


class TestHandshakeAndTransfer:
    def test_one_rtt_handshake(self):
        sim, path = make_path()
        QuicListener(path.server, 443, lambda conn: None)
        client = QuicConnection(path.ue, path.server.address, 443)
        established = []
        client.on_established = lambda: established.append(sim.now)
        client.connect()
        sim.run(until=1.0)
        assert established
        # One round trip (~48 ms path RTT), not two like TCP+TLS.
        assert established[0] == pytest.approx(0.048, rel=0.2)

    def test_handshake_retransmits_through_outage(self):
        sim, path = make_path()
        QuicListener(path.server, 443, lambda conn: None)
        client = QuicConnection(path.ue, path.server.address, 443)
        established = []
        client.on_established = lambda: established.append(sim.now)
        path.radio_link.set_up(False)
        client.connect()
        sim.schedule(2.5, path.radio_link.set_up, True)
        sim.run(until=10.0)
        assert established and established[0] > 2.5

    def test_bulk_transfer_exact(self):
        sim, path = make_path()
        received = [0]

        def on_conn(conn):
            conn.on_data = lambda n: received.__setitem__(0, received[0] + n)

        QuicListener(path.server, 443, on_conn)
        client = QuicConnection(path.ue, path.server.address, 443)
        client.on_established = lambda: client.send(2_000_000)
        client.connect()
        sim.run(until=20.0)
        assert received[0] == 2_000_000

    def test_transfer_with_loss_exact(self):
        sim, path = make_path(radio_loss=0.02)
        received = [0]

        def on_conn(conn):
            conn.on_data = lambda n: received.__setitem__(0, received[0] + n)

        QuicListener(path.server, 443, on_conn)
        client = QuicConnection(path.ue, path.server.address, 443)
        client.on_established = lambda: client.send(500_000)
        client.connect()
        sim.run(until=60.0)
        assert received[0] == 500_000
        assert client.stats_packets_lost > 0

    def test_throughput_respects_policer(self):
        sim, path = make_path(shaper_rate=2e6)
        IperfServer(KIND_QUIC, path.server)
        client = IperfClient(KIND_QUIC, path.ue, path.server.address)
        client.start()
        sim.run(until=20.0)
        assert 1.4 < client.stats.average_mbps(20) < 2.4


class TestMigration:
    def test_download_survives_ip_change(self):
        sim, path = make_path(shaper_rate=3e6)
        got = [0]

        def on_conn(conn):
            conn.on_data = lambda n: got.__setitem__(0, got[0] + n)
            conn.send(6_000_000)

        server_conns = []

        def accept(conn):
            server_conns.append(conn)
            conn.send(6_000_000)

        QuicListener(path.server, 443, accept)
        client = QuicConnection(path.ue, path.server.address, 443)
        client.on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.connect()
        handover(sim, path, at=5.0)
        sim.run(until=60.0)
        assert got[0] == 6_000_000
        assert client.migrations == 1
        assert server_conns[0].migrations >= 1
        assert server_conns[0].peer_ip.startswith("10.129.0.")

    def test_migration_faster_than_mptcp_wait(self):
        """QUIC reacts as soon as the address exists — no 500 ms worker."""
        sim, path = make_path(shaper_rate=3e6)
        deliveries = []

        def accept(conn):
            conn.send(20_000_000)

        QuicListener(path.server, 443, accept)
        client = QuicConnection(path.ue, path.server.address, 443)
        client.on_data = lambda n: deliveries.append(sim.now)
        client.connect()
        handover(sim, path, at=5.0)
        sim.run(until=15.0)
        before = max(t for t in deliveries if t < 5.0)
        after = min(t for t in deliveries if t > 5.0)
        # gap(0.08) + d(0.032) + path validation + recovery << 0.5 s
        assert after - before < 0.45

    def test_multiple_migrations(self):
        sim, path = make_path(shaper_rate=3e6)
        got = [0]

        def accept(conn):
            conn.send(8_000_000)

        QuicListener(path.server, 443, accept)
        client = QuicConnection(path.ue, path.server.address, 443)
        client.on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.connect()
        handover(sim, path, at=3.0, prefix="10.130.0")
        handover(sim, path, at=8.0, prefix="10.131.0")
        sim.run(until=90.0)
        assert got[0] == 8_000_000
        assert client.migrations == 2

    def test_unknown_cid_ignored(self):
        sim, path = make_path()
        accepted = []
        listener = QuicListener(path.server, 443, accepted.append)
        # A non-handshake packet with an unknown CID must not create state.
        from repro.net.quic import AckFrame, QuicDatagram
        from repro.net import UdpSocket
        sock = UdpSocket(path.ue)
        sock.send_to(path.server.address, 443, 100,
                     QuicDatagram(cid=0xDEAD, packet_number=0,
                                  frames=(AckFrame(0, (0,)),)))
        sim.run(until=1.0)
        assert accepted == []
        assert listener.connections == {}
