"""Host-prefix allocation for testbed fleets.

The historical scheme concatenated the slot into one octet position
(``10.22{slot}``), silently capping fleets at 10 hosts; the allocator
spreads slots across a /16-style block.  Covers the allocator itself
and the fleet-drive capacity it unlocks (>8 UEs, >5 sites).
"""

import pytest

from repro.testbed.netaddr import HostPrefixAllocator


class TestHostPrefixAllocator:
    def test_slot_zero_starts_the_block(self):
        alloc = HostPrefixAllocator(base_octet=64)
        assert alloc.prefix(0) == "10.64.0"
        assert alloc.address(0) == "10.64.0.2"

    def test_slots_roll_into_the_next_second_octet(self):
        alloc = HostPrefixAllocator(base_octet=64)
        assert alloc.prefix(255) == "10.64.255"
        assert alloc.prefix(256) == "10.65.0"
        assert alloc.prefix(257) == "10.65.1"

    def test_all_prefixes_are_distinct_real_octets(self):
        alloc = HostPrefixAllocator(base_octet=96, span=2)
        prefixes = [alloc.prefix(s) for s in range(alloc.capacity)]
        assert len(set(prefixes)) == alloc.capacity == 512
        for prefix in prefixes:
            octets = prefix.split(".")
            assert len(octets) == 3
            assert all(0 <= int(o) <= 255 for o in octets)

    def test_capacity_bounds_are_enforced(self):
        alloc = HostPrefixAllocator(base_octet=64, span=1)
        alloc.prefix(255)
        with pytest.raises(ValueError):
            alloc.prefix(256)
        with pytest.raises(ValueError):
            alloc.prefix(-1)

    def test_custom_host_octet(self):
        alloc = HostPrefixAllocator(base_octet=64, host_octet=7)
        assert alloc.address(3) == "10.64.3.7"

    def test_rejects_blocks_that_overflow_the_octet(self):
        with pytest.raises(ValueError):
            HostPrefixAllocator(base_octet=250, span=8)
        with pytest.raises(ValueError):
            HostPrefixAllocator(base_octet=0)
        with pytest.raises(ValueError):
            HostPrefixAllocator(base_octet=64, host_octet=255)


class TestFleetCapacity:
    """The drive harness must accept fleets past the old 8-UE / 5-site
    caps now that host prefixes come from the allocator."""

    def test_ten_ues_six_sites_all_attach(self):
        from repro.testbed.fleet_drive import run_fleet_drive

        report = run_fleet_drive(rat="lte", ues=10, sites=6,
                                 duration=10.0, seed=11,
                                 outage_frac=None, probes=False)
        assert report["ues"] == 10
        assert report["sites"] == 6
        assert report["attach_failures"] == 0
        assert report["unauthorized_session_s"] == 0.0

    def test_old_caps_now_rejected_only_past_the_new_bounds(self):
        from repro.testbed.fleet_drive import run_fleet_drive

        with pytest.raises(ValueError):
            run_fleet_drive(ues=65)
        with pytest.raises(ValueError):
            run_fleet_drive(sites=17)
