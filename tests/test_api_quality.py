"""API quality gates: documentation and export hygiene.

These tests keep the library presentable as an open-source release: every
public module and every name a package exports carries a docstring, and
``__all__`` lists stay consistent with what is actually importable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.core",
    "repro.crypto",
    "repro.emulation",
    "repro.fivegc",
    "repro.lte",
    "repro.net",
    "repro.ran",
    "repro.testbed",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue  # importing it would run the CLI
            yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, \
        f"{module.__name__} lacks a meaningful module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), \
            f"{package_name}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("package_name",
                         [p for p in PACKAGES if p != "repro"])
def test_exported_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, \
        f"{package_name} exports undocumented items: {undocumented}"


def test_version_string():
    assert repro.__version__.count(".") == 2
