"""Tests for the 5G core substrate and CellBricks-over-5G."""

import pytest

from repro.core import Brokerd, UeSapCredentials
from repro.core.btelco5g import CellBricksAmf, CellBricksUe5G
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.fivegc import (
    Amf,
    Ausf,
    Gnb,
    Smf,
    SuciError,
    Udm,
    Ue5G,
    conceal,
    deconceal,
    generate_5g_vector,
    hres_star,
    make_supi,
    usim_authenticate_5g,
)
from repro.fivegc.topology5g import (
    AMF_ADDRESS,
    AUSF_ADDRESS,
    BROKER_ADDRESS,
    GNB_ADDRESS,
    SMF_ADDRESS,
    Topology5G,
    UDM_ADDRESS,
)
from repro.lte.aka import AkaError, UsimState
from repro.net import Simulator

K = bytes(range(16))
SN = "5G:00101"


class TestSuci:
    def test_conceal_deconceal_roundtrip(self):
        key = pooled_keypair(810)
        supi = make_supi(42)
        suci = conceal(supi, key.public_key)
        assert deconceal(suci, key) == supi

    def test_suci_hides_msin(self):
        key = pooled_keypair(810)
        supi = make_supi(42)
        suci = conceal(supi, key.public_key)
        assert supi.msin.encode() not in suci.concealed_msin

    def test_suci_randomized(self):
        key = pooled_keypair(810)
        supi = make_supi(42)
        assert conceal(supi, key.public_key).concealed_msin != \
            conceal(supi, key.public_key).concealed_msin

    def test_wrong_home_key_fails(self):
        suci = conceal(make_supi(42), pooled_keypair(810).public_key)
        with pytest.raises(SuciError):
            deconceal(suci, pooled_keypair(811))

    def test_plmn_bound(self):
        """The concealment binds the routing PLMN (associated data)."""
        from dataclasses import replace
        from repro.lte.identifiers import Plmn
        key = pooled_keypair(810)
        suci = conceal(make_supi(42), key.public_key)
        tampered = replace(suci, plmn=Plmn("999", "99"))
        with pytest.raises(SuciError):
            deconceal(tampered, key)


class TestAka5G:
    def test_mutual_authentication_and_key_agreement(self):
        vector = generate_5g_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        res_star, kausf = usim_authenticate_5g(usim, vector.rand,
                                               vector.autn, SN)
        assert res_star == vector.xres_star
        assert kausf == vector.kausf

    def test_res_star_binds_serving_network(self):
        """RES* differs across serving networks: a rogue SN cannot replay
        a response captured elsewhere."""
        vector = generate_5g_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        res_star, _ = usim_authenticate_5g(usim, vector.rand, vector.autn,
                                           "5G:99999")
        assert res_star != vector.xres_star

    def test_replay_rejected(self):
        vector = generate_5g_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        usim_authenticate_5g(usim, vector.rand, vector.autn, SN)
        with pytest.raises(AkaError):
            usim_authenticate_5g(usim, vector.rand, vector.autn, SN)

    def test_hres_star_deterministic(self):
        vector = generate_5g_vector(K, sqn=5, serving_network=SN)
        assert hres_star(vector.xres_star, vector.rand) == \
            hres_star(vector.xres_star, vector.rand)


def build_baseline(placement="local", provision=True):
    sim = Simulator()
    topo = Topology5G.build(sim, placement)
    home_key = pooled_keypair(812)
    udm = Udm(topo.udm_host, home_network_key=home_key)
    ausf = Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
    smf = Smf(topo.smf_host)
    amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
    Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
    supi = make_supi(7)
    if provision:
        udm.provision(supi, K)
    ue = Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(k=K),
              home_key.public_key, serving_network=amf.serving_network)
    return sim, topo, udm, ausf, smf, amf, ue


class TestBaselineRegistration:
    def test_registration_and_session(self):
        sim, topo, udm, ausf, smf, amf, ue = build_baseline()
        registrations, sessions = [], []
        ue.on_registration_done = registrations.append
        ue.on_session_done = sessions.append
        ue.register()
        sim.run(until=2.0)
        assert registrations and registrations[0].success
        assert amf.registrations_completed == 1
        ue.establish_session()
        sim.run(until=3.0)
        assert sessions and sessions[0].success
        assert sessions[0].ue_ip.startswith("10.128.0.")

    def test_amf_sees_supi_in_baseline(self):
        """The visited 5G network learns the SUPI after auth — exactly
        what CellBricks' pseudonyms avoid."""
        sim, topo, udm, ausf, smf, amf, ue = build_baseline()
        ue.on_registration_done = lambda r: None
        ue.register()
        sim.run(until=2.0)
        context = next(iter(amf.contexts.values()))
        assert context.supi == str(ue.supi)

    def test_unprovisioned_supi_rejected(self):
        sim, topo, udm, ausf, smf, amf, ue = build_baseline(provision=False)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results and not results[0].success

    def test_wrong_usim_key_rejected(self):
        sim, topo, udm, ausf, smf, amf, ue = build_baseline()
        ue.usim = UsimState(k=bytes(16))
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results and not results[0].success

    def test_latency_grows_with_two_home_round_trips(self):
        latencies = {}
        for placement in ("local", "us-west-1"):
            sim, topo, udm, ausf, smf, amf, ue = build_baseline(placement)
            results = []
            ue.on_registration_done = results.append
            ue.register()
            sim.run(until=2.0)
            latencies[placement] = results[0].latency
        delta = latencies["us-west-1"] - latencies["local"]
        # Two home round trips: ~2 x (RTT_west - RTT_local).
        expected = 2 * 2 * (0.0025 - 0.0002)
        assert delta == pytest.approx(expected, rel=0.1)


def build_cellbricks_5g(placement="local"):
    sim = Simulator()
    topo = Topology5G.build(sim, placement)
    ca = CertificateAuthority(key=pooled_keypair(813))
    brokerd = Brokerd(topo.broker_host, id_b="b5g",
                      ca_public_key=ca.public_key, key=pooled_keypair(814))
    telco_key = pooled_keypair(815)
    cert = ca.issue("t5g", "btelco", telco_key.public_key)
    Smf(topo.smf_host)
    amf = CellBricksAmf(topo.amf_host, broker_ip=BROKER_ADDRESS,
                        smf_ip=SMF_ADDRESS, id_t="t5g", key=telco_key,
                        certificate=cert, ca_public_key=ca.public_key)
    amf.trust_broker("b5g", brokerd.public_key)
    Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
    ue_key = pooled_keypair(816)
    brokerd.enroll_subscriber("carol", ue_key.public_key)
    credentials = UeSapCredentials(id_u="carol", id_b="b5g",
                                   ue_key=ue_key,
                                   broker_public_key=brokerd.public_key)
    ue = CellBricksUe5G(topo.ue_host, GNB_ADDRESS, credentials,
                        target_id_t="t5g")
    return sim, topo, brokerd, amf, ue


class TestCellBricks5G:
    def test_sap_registration_and_session(self):
        sim, topo, brokerd, amf, ue = build_cellbricks_5g()
        registrations, sessions = [], []
        ue.on_registration_done = registrations.append
        ue.on_session_done = sessions.append
        ue.register()
        sim.run(until=2.0)
        assert registrations and registrations[0].success
        assert brokerd.requests_approved == 1
        ue.establish_session()
        sim.run(until=3.0)
        assert sessions and sessions[0].success

    def test_amf_never_sees_subscriber_identity(self):
        sim, topo, brokerd, amf, ue = build_cellbricks_5g()
        ue.on_registration_done = lambda r: None
        ue.register()
        sim.run(until=2.0)
        context = next(iter(amf.contexts.values()))
        assert "carol" not in (context.supi or "")
        assert context.supi.startswith("anon-")

    def test_keys_match_between_ue_and_amf(self):
        sim, topo, brokerd, amf, ue = build_cellbricks_5g()
        ue.on_registration_done = lambda r: None
        ue.register()
        sim.run(until=2.0)
        context = next(iter(amf.contexts.values()))
        assert ue.security.k_nas_int == context.security.k_nas_int

    def test_cb_beats_baseline_when_home_side_is_remote(self):
        def register(builder, placement):
            sim_objects = builder(placement)
            sim, ue = sim_objects[0], sim_objects[-1]
            results = []
            ue.on_registration_done = results.append
            ue.register()
            sim.run(until=2.0)
            assert results[0].success
            return results[0].latency

        bl = register(build_baseline, "us-east-1")
        cb = register(build_cellbricks_5g, "us-east-1")
        # One broker RTT vs two home-network RTTs.
        assert cb < 0.7 * bl
