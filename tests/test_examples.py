"""Smoke tests: every shipped example must run end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ["attached to coffee-shop-cell", "switched to campus-cell",
                      "pseudonym"],
    "marketplace.py": ["BLOCKED from future attachments", "DISPUTED"],
    "drive_emulation.py": ["averages:", "slowdown:"],
    "private_network_roaming.py": ["video across 2 network transitions",
                                   "zero roaming agreements"],
    "settlement_day.py": ["DISPUTED, paid verified amount only",
                          "margin"],
    "generations.py": ["4G / EPC", "5G / 5GC", "CB gain"],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in EXPECTATIONS[script]:
        assert needle in result.stdout, (
            f"{script}: expected {needle!r} in output:\n{result.stdout}")
