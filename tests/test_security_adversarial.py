"""Adversarial tests: the attack discussion of the technical report.

Each test plays one attacker against the deployed protocol machinery and
asserts the defense holds: IMSI catching, request relaying, authorization
theft, report forgery/replay, and key revocation.
"""

import random

import pytest

from repro.core.billing import (
    REPORTER_BTELCO,
    REPORTER_UE,
    TrafficReport,
    TrafficReportUpload,
    make_upload,
)
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.qos import QosCapabilities
from repro.core.sap import (
    BrokerSap,
    BrokerSubscriber,
    BtelcoSap,
    BtelcoSapConfig,
    SapError,
    UeSap,
    UeSapCredentials,
)
from repro.crypto import CertificateAuthority, CryptoError, generate_keypair
from repro.crypto.keypool import pooled_keypair
from repro.lte.security import SecurityContext, SecurityError
from repro.net import Simulator


@pytest.fixture(scope="module")
def world():
    ca = CertificateAuthority(key=pooled_keypair(700))
    broker_key = pooled_keypair(701)
    telco_key = pooled_keypair(702)
    ue_key = pooled_keypair(703)
    cert = ca.issue("t1", "btelco", telco_key.public_key)
    broker = BrokerSap(id_b="b", key=broker_key, ca_public_key=ca.public_key)
    broker.enroll(BrokerSubscriber(id_u="alice",
                                   public_key=ue_key.public_key))
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t1", key=telco_key, certificate=cert,
        qos_capabilities=QosCapabilities(), ca_public_key=ca.public_key))
    creds = UeSapCredentials(id_u="alice", id_b="b", ue_key=ue_key,
                             broker_public_key=broker_key.public_key)
    return dict(ca=ca, broker=broker, telco=telco, creds=creds,
                broker_key=broker_key, telco_key=telco_key, ue_key=ue_key)


class TestImsiCatching:
    def test_btelco_cannot_decrypt_subscriber_identity(self, world):
        """§4.1: 'Because T never observes a cleartext identifier for U,
        it cannot act as an IMSI catcher'."""
        req_u = UeSap(world["creds"]).craft_request("t1")
        with pytest.raises(CryptoError):
            world["telco_key"].decrypt(req_u.auth_vec_encrypted)

    def test_requests_unlinkable_without_broker_key(self, world):
        """Two attaches by the same UE produce unrelated ciphertexts."""
        ue = UeSap(world["creds"])
        a = ue.craft_request("t1").auth_vec_encrypted
        b = ue.craft_request("t1").auth_vec_encrypted
        assert a != b
        # No common plaintext-revealing prefix (hybrid enc randomizes).
        assert a[:32] != b[:32]


class TestAuthorizationTheft:
    def test_stolen_auth_resp_t_useless_without_matching_ue(self, world):
        """A bTelco that replays an old authorization towards a *different*
        UE cannot complete attachment: the ss in authRespT matches only
        the UE from the original SAP run, so SMC fails."""
        # Legitimate run for alice.
        ue = UeSap(world["creds"])
        req_t = world["telco"].augment_request(ue.craft_request("t1"))
        sealed_t, sealed_u, grant = world["broker"].process_request(
            req_t, now=1.0)
        session = world["telco"].process_authorization(
            sealed_t, world["broker_key"].public_key, None, now=1.0)

        # The bTelco tries to serve mallory with alice's authorization.
        mallory_ss = b"m" * 32  # whatever mallory derives, it isn't ss
        telco_ctx = SecurityContext(kasme=session.ss)
        mallory_ctx = SecurityContext(kasme=mallory_ss)
        protected = telco_ctx.protect_downlink(b"security mode command")
        with pytest.raises(SecurityError):
            mallory_ctx.unprotect_downlink(protected)

    def test_authorization_not_transferable_between_btelcos(self, world):
        key2 = generate_keypair(rng=random.Random(77))
        cert2 = world["ca"].issue("t2", "btelco", key2.public_key)
        telco2 = BtelcoSap(BtelcoSapConfig(
            id_t="t2", key=key2, certificate=cert2,
            ca_public_key=world["ca"].public_key))
        ue = UeSap(world["creds"])
        req_t = world["telco"].augment_request(ue.craft_request("t1"))
        sealed_t, _, _ = world["broker"].process_request(req_t, now=1.0)
        with pytest.raises(SapError):
            telco2.process_authorization(
                sealed_t, world["broker_key"].public_key, None, now=1.0)


class TestRogueBtelco:
    def test_self_signed_btelco_rejected(self, world):
        """A bTelco without a CA-signed certificate cannot get service
        authorized — the zero-pre-agreement model still needs the PKI."""
        rogue_key = generate_keypair(rng=random.Random(88))
        rogue_ca = CertificateAuthority(key=generate_keypair(
            rng=random.Random(89)))
        rogue_cert = rogue_ca.issue("evil", "btelco", rogue_key.public_key)
        rogue = BtelcoSap(BtelcoSapConfig(
            id_t="evil", key=rogue_key, certificate=rogue_cert,
            ca_public_key=world["ca"].public_key))
        req_u = UeSap(world["creds"]).craft_request("evil")
        req_t = rogue.augment_request(req_u)
        with pytest.raises(SapError, match="certificate"):
            world["broker"].process_request(req_t, now=1.0)

    def test_btelco_with_broker_role_cert_rejected(self, world):
        """Role confusion: a *broker* certificate cannot authorize
        bTelco service."""
        key = generate_keypair(rng=random.Random(90))
        cert = world["ca"].issue("not-a-telco", "broker", key.public_key)
        confused = BtelcoSap(BtelcoSapConfig(
            id_t="not-a-telco", key=key, certificate=cert,
            ca_public_key=world["ca"].public_key))
        req_u = UeSap(world["creds"]).craft_request("not-a-telco")
        req_t = confused.augment_request(req_u)
        with pytest.raises(SapError):
            world["broker"].process_request(req_t, now=1.0)


class TestBillingAttacks:
    def _verifier(self, world):
        from repro.core.billing import BillingVerifier
        from repro.core.qos import QosInfo
        from repro.core.sap import SapGrant
        verifier = BillingVerifier(broker_key=world["broker_key"])
        grant = SapGrant(id_u="alice", id_u_opaque="anon", id_t="t1",
                         session_id="s", ss=b"s" * 32, qos_info=QosInfo(),
                         granted_at=0.0, expires_at=1e9)
        verifier.open_session(grant,
                              ue_public_key=world["ue_key"].public_key,
                              btelco_public_key=world["telco_key"].public_key)
        return verifier

    def _report(self, seq=0, dl=1_000_000):
        return TrafficReport(session_id="s", seq=seq, interval_start=0.0,
                             interval_end=30.0, ul_bytes=0, dl_bytes=dl)

    def test_btelco_cannot_forge_ue_reports(self, world):
        """The bTelco would love to submit 'UE' reports matching its own
        inflated numbers — but it lacks the UE's signing key."""
        verifier = self._verifier(world)
        forged = make_upload(self._report(dl=9_999_999), REPORTER_UE,
                             world["telco_key"],  # wrong key!
                             world["broker_key"].public_key)
        assert not verifier.ingest(forged, now=30.0)

    def test_replayed_upload_does_not_double_bill(self, world):
        verifier = self._verifier(world)
        ue_up = make_upload(self._report(), REPORTER_UE, world["ue_key"],
                            world["broker_key"].public_key)
        t_up = make_upload(self._report(), REPORTER_BTELCO,
                           world["telco_key"],
                           world["broker_key"].public_key)
        verifier.ingest(ue_up, now=30.0)
        verifier.ingest(t_up, now=30.0)
        first = verifier.sessions["s"].billable_dl_bytes
        # Replay both uploads (e.g. a bTelco hoping to double its revenue).
        verifier.ingest(ue_up, now=31.0)
        verifier.ingest(t_up, now=31.0)
        assert verifier.sessions["s"].billable_dl_bytes == first
        assert verifier.sessions["s"].checked_pairs == 1

    def test_report_cross_session_replay_rejected(self, world):
        """A signed report from one session cannot bill another."""
        verifier = self._verifier(world)
        other = TrafficReport(session_id="other", seq=0, interval_start=0.0,
                              interval_end=30.0, ul_bytes=0,
                              dl_bytes=5_000_000)
        upload = make_upload(other, REPORTER_UE, world["ue_key"],
                             world["broker_key"].public_key)
        # Claim it belongs to session "s" on the wire.
        spoofed = TrafficReportUpload(
            session_id="s", seq=0, reporter=REPORTER_UE,
            blob=upload.blob, signature=upload.signature)
        assert not verifier.ingest(spoofed, now=30.0)


class TestRevocation:
    def test_revoked_ue_cannot_attach_anywhere(self):
        """§4.1: 'B can revoke U's public key by simply invalidating the
        key in its database' — end-to-end over the full network."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"

        net.brokerd.revoke_subscriber("alice")
        results = []
        manager.ue.on_attach_done = results.append
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        assert results and not results[-1].success
        assert "suspended" in results[-1].cause

    def test_revocation_cascades_to_active_session(self):
        """Revocation is not just 'no new attaches': the broker pushes a
        SessionRevocation to the serving bTelco, which detaches the UE and
        refuses the withdrawn grant forever after."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        agw = net.sites["btelco-a"].agw
        (session_id,) = agw.sessions
        sealed_authorization = agw.sessions[session_id].authorization

        detached = []
        manager.ue.on_detached = lambda: detached.append(sim.now)
        revoked = net.brokerd.revoke_subscriber("alice")
        assert [g.session_id for g in revoked] == [session_id]
        sim.run(until=2.0)

        # The cascade reached the serving bTelco and tore the session down.
        assert agw.revoked_sessions == 1
        assert detached and detached[0] == pytest.approx(1.0, abs=0.5)
        assert manager.ue.state == "DEREGISTERED"
        assert session_id not in agw.sessions
        assert agw.spgw.active_count == 0
        # The withdrawn authorization can never be re-validated there.
        with pytest.raises(SapError, match="session revoked"):
            agw.sap.process_authorization(
                sealed_authorization, net.brokerd.public_key, None,
                now=sim.now)
        # Broker-side bookkeeping agrees.
        stats = net.brokerd.stats()
        assert stats["grants_revoked"] == 1
        assert stats["grants_active"] == 0
        assert stats["revocations_sent"] == 1
        # The fan-out completed the ack handshake: nothing outstanding.
        assert stats["revocation_batches_acked"] == 1
        assert stats["revocation_batches_outstanding"] == 0

    def test_duplicate_revocation_notice_reacked_not_reapplied(self):
        """A retransmitted (or maliciously replayed) batch for an
        already-revoked session is re-acked but applies nothing: no
        double detach, no counter drift."""
        from repro.core.messages import (
            SessionRevocation,
            SessionRevocationBatch,
        )

        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        (session_id,) = agw.sessions
        net.brokerd.revoke_subscriber("alice")
        sim.run(until=2.0)
        assert agw.revoked_sessions == 1

        acks_before = agw.revocation_acks_sent
        duplicate = SessionRevocationBatch(
            batch_id=999, id_b=net.brokerd.id_b,
            revocations=(SessionRevocation(session_id=session_id),))
        agw._handle_revocation_batch(net.broker_host.address, duplicate)
        sim.run(until=3.0)
        assert agw.revocation_dups == 1
        assert agw.revoked_sessions == 1          # not applied twice
        assert agw.revocation_acks_sent == acks_before + 1

    def test_lost_revocation_retransmitted_until_acked(self):
        """The broker link is dark when the revocation is pushed: the
        batch must ride retransmission until the signed ack lands —
        a lost notice must never leave the session running."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        (session_id,) = agw.sessions

        net.links["btelco-a-broker"].interrupt(1.5)
        revoked_at = sim.now
        net.brokerd.revoke_subscriber("alice")
        sim.run(until=revoked_at + 0.5)
        # Still dark: the session survives, the batch is outstanding.
        assert session_id in agw.sessions
        assert net.brokerd.stats()["revocation_batches_outstanding"] == 1
        sim.run(until=revoked_at + 10.0)
        stats = net.brokerd.stats()
        assert session_id not in agw.sessions
        assert stats["revocation_batches_retried"] >= 1
        assert stats["revocation_batches_acked"] == 1
        assert stats["revocation_batches_outstanding"] == 0

    def test_forged_revocation_ack_rejected(self):
        """An on-path attacker must not be able to silence the fan-out
        with an unsigned/forged ack and keep a revoked session alive."""
        from repro.core.messages import RevocationAck

        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        (session_id,) = agw.sessions

        net.links["btelco-a-broker"].interrupt(1.5)
        net.brokerd.revoke_subscriber("alice")
        (batch_id,) = net.brokerd._outstanding_batches
        forged = RevocationAck(batch_id=batch_id, id_t="btelco-a",
                               session_ids=(session_id,),
                               signature=b"\x00" * 64)
        net.brokerd._handle_revocation_ack(
            net.sites["btelco-a"].agw_host.address, forged)
        assert net.brokerd.revocation_acks_bad == 1
        assert net.brokerd.stats()["revocation_batches_outstanding"] == 1
        # The genuine handshake still completes once the link heals.
        sim.run(until=10.0)
        assert session_id not in agw.sessions
        assert net.brokerd.stats()["revocation_batches_acked"] == 1
