"""Unit tests for the SAP protocol procedures (Fig 2 / Fig 3)."""

import random

import pytest

from repro.core.messages import AuthVec, MessageError
from repro.core.qos import QosCapabilities, QosInfo
from repro.core.sap import (
    BrokerSap,
    BrokerSubscriber,
    BtelcoSap,
    BtelcoSapConfig,
    SapError,
    UeSap,
    UeSapCredentials,
)
from repro.crypto import CertificateAuthority, generate_keypair


@pytest.fixture(scope="module")
def world():
    """A CA, a broker, a bTelco, and an enrolled UE (module-scoped: RSA
    keygen is the slow part)."""
    rng = random.Random(0x5A9)
    ca = CertificateAuthority(key=generate_keypair(rng=rng))
    broker_key = generate_keypair(rng=rng)
    telco_key = generate_keypair(rng=rng)
    ue_key = generate_keypair(rng=rng)
    telco_cert = ca.issue("t1.example", "btelco", telco_key.public_key)

    broker = BrokerSap(id_b="b.example", key=broker_key,
                       ca_public_key=ca.public_key)
    broker.enroll(BrokerSubscriber(id_u="alice",
                                   public_key=ue_key.public_key))
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t1.example", key=telco_key, certificate=telco_cert,
        qos_capabilities=QosCapabilities(supported_qcis=(8, 9)),
        ca_public_key=ca.public_key))
    creds = UeSapCredentials(id_u="alice", id_b="b.example", ue_key=ue_key,
                             broker_public_key=broker_key.public_key)
    return dict(ca=ca, broker=broker, telco=telco, creds=creds,
                broker_key=broker_key, telco_key=telco_key, ue_key=ue_key,
                telco_cert=telco_cert)


def full_run(world, now=10.0):
    ue = UeSap(world["creds"])
    req_u = ue.craft_request("t1.example")
    req_t = world["telco"].augment_request(req_u)
    sealed_t, sealed_u, grant = world["broker"].process_request(req_t, now)
    return ue, req_u, req_t, sealed_t, sealed_u, grant


class TestHappyPath:
    def test_full_protocol_run(self, world):
        ue, req_u, req_t, sealed_t, sealed_u, grant = full_run(world)
        session = world["telco"].process_authorization(
            sealed_t, world["broker_key"].public_key, None, now=10.0)
        response = ue.process_response(sealed_u)
        # Both sides hold the same shared secret (the future KASME).
        assert session.ss == response.ss == grant.ss
        assert session.session_id == response.session_id

    def test_btelco_never_sees_subscriber_identity(self, world):
        ue, req_u, req_t, sealed_t, sealed_u, grant = full_run(world)
        session = world["telco"].process_authorization(
            sealed_t, world["broker_key"].public_key, None, now=10.0)
        # The bTelco-visible identity is an opaque pseudonym.
        assert "alice" not in session.id_u_opaque
        # And nothing in authReqU reveals it either (it is sealed to B).
        assert b"alice" not in req_u.auth_vec_encrypted

    def test_qos_clamped_to_btelco_capability(self, world):
        world["broker"].subscribers["alice"].qos_plan = QosInfo(
            qci=8, ambr_dl_bps=500e6, ambr_ul_bps=300e6)
        try:
            ue, _, _, sealed_t, _, grant = full_run(world)
            caps = world["telco"].config.qos_capabilities
            assert grant.qos_info.ambr_dl_bps <= caps.max_ambr_dl_bps
            assert grant.qos_info.qci in caps.supported_qcis
        finally:
            world["broker"].subscribers["alice"].qos_plan = QosInfo()

    def test_distinct_sessions_get_distinct_secrets(self, world):
        *_, grant1 = full_run(world)
        *_, grant2 = full_run(world)
        assert grant1.ss != grant2.ss
        assert grant1.session_id != grant2.session_id


class TestUeChecks:
    def test_ue_rejects_response_signed_by_wrong_key(self, world):
        from repro.core.messages import seal_and_sign
        from repro.core.messages import AuthRespU
        mallory = generate_keypair(rng=random.Random(99))
        ue = UeSap(world["creds"])
        ue.craft_request("t1.example")
        forged = seal_and_sign(
            AuthRespU(id_u="alice", id_t="t1.example", ss=b"s" * 32,
                      nonce=b"n" * 16, session_id="x").to_bytes(),
            world["ue_key"].public_key, mallory)
        with pytest.raises(SapError, match="signature"):
            ue.process_response(forged)

    def test_ue_rejects_replayed_response(self, world):
        ue, *_, sealed_u, _ = full_run(world)
        ue.process_response(sealed_u)
        with pytest.raises(SapError, match="nonce"):
            ue.process_response(sealed_u)  # nonce already consumed

    def test_ue_rejects_response_for_other_btelco(self, world):
        ue1, *_ = full_run(world)
        # Craft a response from a run targeting a different bTelco.
        ue2, _, req_t2, _, sealed_u2, _ = full_run(world)
        with pytest.raises(SapError):
            ue1.process_response(sealed_u2)

    def test_each_request_has_fresh_nonce(self, world):
        ue = UeSap(world["creds"])
        r1 = ue.craft_request("t1.example")
        r2 = ue.craft_request("t1.example")
        assert r1.auth_vec_encrypted != r2.auth_vec_encrypted


class TestBrokerChecks:
    def test_unknown_subscriber_denied(self, world):
        creds = UeSapCredentials(
            id_u="mallory", id_b="b.example",
            ue_key=generate_keypair(rng=random.Random(1)),
            broker_public_key=world["broker_key"].public_key)
        req_u = UeSap(creds).craft_request("t1.example")
        req_t = world["telco"].augment_request(req_u)
        with pytest.raises(SapError, match="unknown subscriber"):
            world["broker"].process_request(req_t, now=10.0)

    def test_suspended_subscriber_denied(self, world):
        world["broker"].revoke("alice")
        try:
            req_u = UeSap(world["creds"]).craft_request("t1.example")
            req_t = world["telco"].augment_request(req_u)
            with pytest.raises(SapError, match="suspended"):
                world["broker"].process_request(req_t, now=10.0)
        finally:
            world["broker"].subscribers["alice"].suspended = False

    def test_forged_ue_signature_denied(self, world):
        req_u = UeSap(world["creds"]).craft_request("t1.example")
        forged = type(req_u)(sig_authvec=b"\x00" * len(req_u.sig_authvec),
                             auth_vec_encrypted=req_u.auth_vec_encrypted,
                             id_b=req_u.id_b)
        req_t = world["telco"].augment_request(forged)
        with pytest.raises(SapError, match="UE signature"):
            world["broker"].process_request(req_t, now=10.0)

    def test_retransmitted_request_reserves_same_grant(self, world):
        """A bit-identical duplicate (a retransmission) is NOT a replay
        attack: the broker re-serves the original grant idempotently."""
        ue = UeSap(world["creds"])
        req_u = ue.craft_request("t1.example")
        req_t = world["telco"].augment_request(req_u)
        before = world["broker"].dup_requests_served
        sealed_t, sealed_u, grant = world["broker"].process_request(
            req_t, now=10.0)
        replay_t, replay_u, replay_grant = world["broker"].process_request(
            req_t, now=11.0)
        assert replay_grant.session_id == grant.session_id
        assert replay_t is sealed_t and replay_u is sealed_u
        assert world["broker"].dup_requests_served == before + 1
        assert world["broker"].attach_denied["replay"] == 0

    def test_modified_request_reusing_nonce_denied(self, world):
        """Reusing a seen nonce inside anything other than the original
        datagram (different digest) is still a replay attack."""
        ue = UeSap(world["creds"])
        req_u = ue.craft_request("t1.example")
        req_t = world["telco"].augment_request(req_u)
        world["broker"].process_request(req_t, now=10.0)
        tampered = world["telco"].augment_request(req_u,
                                                  lawful_intercept=True)
        with pytest.raises(SapError, match="replayed"):
            world["broker"].process_request(tampered, now=11.0)

    def test_expired_btelco_certificate_denied(self, world):
        key = generate_keypair(rng=random.Random(5))
        cert = world["ca"].issue("t2.example", "btelco", key.public_key,
                                 not_before=0.0, not_after=5.0)
        telco = BtelcoSap(BtelcoSapConfig(
            id_t="t2.example", key=key, certificate=cert,
            ca_public_key=world["ca"].public_key))
        req_u = UeSap(world["creds"]).craft_request("t2.example")
        req_t = telco.augment_request(req_u)
        with pytest.raises(SapError, match="certificate"):
            world["broker"].process_request(req_t, now=100.0)

    def test_btelco_identity_must_match_certificate(self, world):
        imposter = BtelcoSap(BtelcoSapConfig(
            id_t="t9.example",  # claims t9 but presents t1's cert
            key=world["telco_key"], certificate=world["telco_cert"],
            ca_public_key=world["ca"].public_key))
        req_u = UeSap(world["creds"]).craft_request("t9.example")
        req_t = imposter.augment_request(req_u)
        with pytest.raises(SapError, match="identity"):
            world["broker"].process_request(req_t, now=10.0)

    def test_relayed_request_for_other_btelco_denied(self, world):
        """authVec pins idT: a bTelco cannot replay a request the UE made
        for a different bTelco."""
        req_u = UeSap(world["creds"]).craft_request("somewhere-else")
        req_t = world["telco"].augment_request(req_u)  # t1 forwards it
        with pytest.raises(SapError, match="mismatch"):
            world["broker"].process_request(req_t, now=10.0)

    def test_tampered_qos_cap_denied(self, world):
        """The bTelco's signature covers qosCap: tampering is detected."""
        req_u = UeSap(world["creds"]).craft_request("t1.example")
        req_t = world["telco"].augment_request(req_u)
        tampered = type(req_t)(
            auth_req_u=req_t.auth_req_u, id_t=req_t.id_t,
            qos_cap=QosCapabilities(supported_qcis=(1, 2, 5, 8, 9),
                                    max_ambr_dl_bps=1e12),
            t_certificate=req_t.t_certificate, sig_t=req_t.sig_t)
        with pytest.raises(SapError, match="signature"):
            world["broker"].process_request(tampered, now=10.0)

    def test_policy_hook_can_deny(self, world):
        world["broker"].authorize_btelco = lambda id_t: "blocklisted"
        try:
            req_u = UeSap(world["creds"]).craft_request("t1.example")
            req_t = world["telco"].augment_request(req_u)
            with pytest.raises(SapError, match="blocklisted"):
                world["broker"].process_request(req_t, now=10.0)
        finally:
            world["broker"].authorize_btelco = lambda id_t: None


class TestBtelcoChecks:
    def test_authorization_for_other_btelco_rejected(self, world):
        key2 = generate_keypair(rng=random.Random(6))
        cert2 = world["ca"].issue("t2.example", "btelco", key2.public_key)
        telco2 = BtelcoSap(BtelcoSapConfig(
            id_t="t2.example", key=key2, certificate=cert2,
            ca_public_key=world["ca"].public_key))
        # Broker authorizes t1; t2 must not be able to use that grant.
        *_, sealed_t, _, _ = full_run(world)
        with pytest.raises(SapError):
            telco2.process_authorization(
                sealed_t, world["broker_key"].public_key, None, now=10.0)

    def test_expired_authorization_rejected(self, world):
        *_, sealed_t, _, grant = full_run(world, now=10.0)
        with pytest.raises(SapError, match="expired"):
            world["telco"].process_authorization(
                sealed_t, world["broker_key"].public_key, None,
                now=grant.expires_at + 1)

    def test_wrong_broker_key_rejected(self, world):
        *_, sealed_t, _, _ = full_run(world)
        mallory = generate_keypair(rng=random.Random(42))
        with pytest.raises(SapError, match="signature"):
            world["telco"].process_authorization(
                sealed_t, mallory.public_key, None, now=10.0)


def fresh_broker(world, session_ttl=3600.0):
    """A private BrokerSap (reusing the module keys) so lifecycle tests
    can churn time without disturbing the shared ``world`` broker."""
    broker = BrokerSap(id_b="b.example", key=world["broker_key"],
                       ca_public_key=world["ca"].public_key,
                       session_ttl=session_ttl)
    broker.enroll(BrokerSubscriber(id_u="alice",
                                   public_key=world["ue_key"].public_key))
    return broker


def attach(world, broker, now, id_u="alice"):
    creds = world["creds"]
    if id_u != "alice":
        creds = UeSapCredentials(
            id_u=id_u, id_b="b.example", ue_key=world["ue_key"],
            broker_public_key=world["broker_key"].public_key)
    ue = UeSap(creds)
    req_t = world["telco"].augment_request(ue.craft_request("t1.example"))
    return ue, req_t, broker.process_request(req_t, now=now)


class TestSessionLifecycle:
    def test_replay_window_evicts_but_still_blocks_inside_window(self, world):
        broker = fresh_broker(world, session_ttl=10.0)
        ue, req_t, _ = attach(world, broker, now=0.0)
        # An attacker reusing the nonce in a *different* request (here:
        # re-signed with the LI bit flipped, so the digest differs and
        # the idempotency cache cannot answer) is rejected inside the
        # window, even after other requests have come and gone (eviction
        # must not forget live nonces).
        evil = world["telco"].augment_request(req_t.auth_req_u,
                                              lawful_intercept=True)
        for now in (1.0, 5.0, 9.9):
            attach(world, broker, now=now)
            with pytest.raises(SapError, match="replayed"):
                broker.process_request(evil, now=now)
        assert broker.replay_hits == 3
        assert broker.attach_denied["replay"] == 3

    def test_replay_cache_bounded_by_active_window(self, world):
        broker = fresh_broker(world, session_ttl=5.0)
        peak = 0
        for step in range(40):
            attach(world, broker, now=float(step))
            peak = max(peak, len(broker._seen_nonces))
        # ttl=5, one attach per second: never more than 6 live nonces,
        # despite 40 total attaches.
        assert peak <= 6
        assert len(broker._nonce_expiry) <= 6

    def test_grant_gc_bounds_state_under_churn(self, world):
        broker = fresh_broker(world, session_ttl=5.0)
        expired = []
        broker.on_grant_expired = expired.append
        for step in range(40):
            attach(world, broker, now=float(step))
            assert len(broker.grants) <= 6
        assert broker.grants_expired == len(expired) > 0
        assert broker.grants_expired + len(broker.grants) == 40
        # Explicit sweep far in the future drains everything.
        broker.expire_grants(now=1e6)
        assert broker.grants == {}
        assert broker._sessions_by_ue == {}
        assert broker._grant_expiry == []

    def test_revocation_cascades_to_outstanding_grants(self, world):
        broker = fresh_broker(world)
        hooked = []
        broker.on_grant_revoked = hooked.append
        _, _, (_, _, grant1) = attach(world, broker, now=0.0)
        _, _, (_, _, grant2) = attach(world, broker, now=1.0)
        revoked = broker.revoke("alice")
        assert {g.session_id for g in revoked} == \
            {grant1.session_id, grant2.session_id}
        assert hooked == revoked
        assert broker.grants == {}
        assert broker.revoked_sessions == \
            {grant1.session_id, grant2.session_id}
        # The subscriber is suspended: re-attach is denied.
        with pytest.raises(SapError, match="suspended"):
            attach(world, broker, now=2.0)
        assert broker.attach_denied["suspended"] == 1
        # Tombstones are themselves garbage-collected after the grants'
        # natural lifetime.
        broker.expire_grants(now=grant2.expires_at + 1)
        assert broker.revoked_sessions == set()

    def test_btelco_rejects_revoked_session(self, world):
        broker = fresh_broker(world)
        ue, _, (sealed_t, _, grant) = attach(world, broker, now=0.0)
        telco = world["telco"]
        telco.revoke_session(grant.session_id)
        try:
            assert not telco.session_authorized(grant.session_id)
            with pytest.raises(SapError, match="session revoked"):
                telco.process_authorization(
                    sealed_t, world["broker_key"].public_key, None, now=0.0)
        finally:
            telco.revoked_sessions.discard(grant.session_id)

    def test_counters_and_stats(self, world):
        broker = fresh_broker(world)
        attach(world, broker, now=0.0)
        with pytest.raises(SapError, match="unknown subscriber"):
            attach(world, broker, now=1.0, id_u="mallory")
        stats = broker.stats()
        assert stats["attach_ok"] == 1
        assert stats["attach_denied"] == {"unknown_subscriber": 1}
        assert stats["grants_active"] == 1
        assert stats["replay_cache_size"] == 1
        assert stats["subscribers"] == 1


class TestUeStateHygiene:
    def test_ue_clears_state_on_success(self, world):
        ue, *_, sealed_u, _ = full_run(world)
        assert ue._outstanding_nonce is not None
        ue.process_response(sealed_u)
        assert ue._outstanding_nonce is None
        assert ue._target_id_t is None

    def test_ue_clears_state_on_failure(self, world):
        ue, *_ = full_run(world)
        # A response from a different run fails the nonce check...
        _, _, _, _, sealed_other, _ = full_run(world)
        with pytest.raises(SapError):
            ue.process_response(sealed_other)
        # ...and must still burn the outstanding (nonce, target) pair.
        assert ue._outstanding_nonce is None
        assert ue._target_id_t is None


class TestAuthVecSerialization:
    def test_roundtrip(self):
        vec = AuthVec(id_u="u", id_b="b", id_t="t", nonce=b"n" * 16)
        assert AuthVec.from_bytes(vec.to_bytes()) == vec

    def test_malformed_rejected(self):
        with pytest.raises(MessageError):
            AuthVec.from_bytes(b"not json")
        with pytest.raises(MessageError):
            AuthVec.from_bytes(b'{"idU": "u"}')
