"""Tests for protected NAS transport (post-SMC ciphering + integrity)."""

import pytest

from repro.lte.identifiers import Guti, TEST_PLMN
from repro.lte.nas import (
    AttachAccept,
    AttachComplete,
    DetachAccept,
    DetachRequest,
)
from repro.lte.nas_transport import (
    ProtectedNas,
    deserialize_nas,
    protect,
    register_protected_type,
    serialize_nas,
    unprotect,
)
from repro.lte.security import SecurityContext, SecurityError


def contexts():
    """A matched UE/network context pair."""
    return (SecurityContext(kasme=b"k" * 32),
            SecurityContext(kasme=b"k" * 32))


def sample_accept():
    return AttachAccept(
        guti=Guti(TEST_PLMN, mme_group=1, mme_code=2, m_tmsi=0x1234),
        ue_ip="10.128.0.7", bearer_id=5, qci=9,
        ambr_dl_bps=20e6, ambr_ul_bps=10e6)


class TestSerialization:
    def test_roundtrip_attach_accept(self):
        message = sample_accept()
        assert deserialize_nas(serialize_nas(message)) == message

    def test_roundtrip_detach_messages(self):
        for message in (DetachRequest(switch_off=True), DetachAccept(),
                        AttachComplete()):
            assert deserialize_nas(serialize_nas(message)) == message

    def test_unregistered_type_rejected(self):
        from repro.lte.nas import AttachRequest
        with pytest.raises(SecurityError, match="not registered"):
            serialize_nas(AttachRequest(imsi="001010000000001"))

    def test_unknown_type_on_decode_rejected(self):
        with pytest.raises(SecurityError, match="unknown"):
            deserialize_nas(b'{"__type__": "Bogus"}')

    def test_malformed_payload_rejected(self):
        with pytest.raises(SecurityError):
            deserialize_nas(b"not json")


class TestProtection:
    def test_downlink_roundtrip(self):
        network, ue = contexts()
        envelope = protect(network, sample_accept(), downlink=True)
        recovered = unprotect(ue, envelope, downlink=True)
        assert recovered == sample_accept()

    def test_uplink_roundtrip(self):
        network, ue = contexts()
        envelope = protect(ue, AttachComplete(), downlink=False)
        assert unprotect(network, envelope, downlink=False) == \
            AttachComplete()

    def test_tampering_detected(self):
        network, ue = contexts()
        envelope = protect(network, sample_accept(), downlink=True)
        tampered = ProtectedNas(blob=envelope.blob[:-1] +
                                bytes([envelope.blob[-1] ^ 1]))
        with pytest.raises(SecurityError):
            unprotect(ue, tampered, downlink=True)

    def test_replay_detected(self):
        """Re-delivering an old envelope trips the NAS COUNT check."""
        network, ue = contexts()
        first = protect(network, sample_accept(), downlink=True)
        second = protect(network, DetachRequest(), downlink=True)
        assert unprotect(ue, first, downlink=True) == sample_accept()
        unprotect(ue, second, downlink=True)
        with pytest.raises(SecurityError, match="replay"):
            unprotect(ue, first, downlink=True)

    def test_direction_confusion_detected(self):
        network, ue = contexts()
        envelope = protect(network, sample_accept(), downlink=True)
        with pytest.raises(SecurityError):
            unprotect(ue, envelope, downlink=False)

    def test_wrong_keys_detected(self):
        network, _ = contexts()
        stranger = SecurityContext(kasme=b"x" * 32)
        envelope = protect(network, sample_accept(), downlink=True)
        with pytest.raises(SecurityError):
            unprotect(stranger, envelope, downlink=True)

    def test_confidentiality(self):
        """The UE's assigned address is not visible on the wire."""
        network, _ = contexts()
        envelope = protect(network, sample_accept(), downlink=True)
        assert b"10.128.0.7" not in envelope.blob


class TestEndToEndProtection:
    def test_attach_accept_rides_protected(self):
        """In the full CellBricks attach, the accept (with the UE's new
        address) crosses the RAN only inside a protected envelope."""
        from repro.core.mobility import (
            MobilityManager,
            build_cellbricks_network,
        )
        from repro.net import Simulator

        sim = Simulator()
        net = build_cellbricks_network(sim)
        site = net.sites["btelco-a"]
        seen_types = []
        original = site.enb._relay_downlink

        def spy(src_ip, wrapped):
            seen_types.append(type(wrapped.nas).__name__)
            original(src_ip, wrapped)

        from repro.lte.enodeb import S1DownlinkNas
        site.enb.on(S1DownlinkNas, spy)

        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        assert "ProtectedNas" in seen_types
        assert "AttachAccept" not in seen_types
