"""Integration tests for MPTCP: subflows, handovers, re-injection."""

import pytest

from repro.net import (
    CellularPath,
    MptcpConnection,
    MptcpListener,
    Simulator,
)
from repro.net.mptcp import MpJoin, _ConnReceiver
from repro.net.tcp import TcpConnection


def make_path(sim, shaper_rate=None, **kwargs):
    path = CellularPath(sim, shaper_rate=shaper_rate, **kwargs)
    path.assign_ue_address()
    return path


class DownloadServer:
    """Pushes ``size`` bytes to every accepted MPTCP connection."""

    def __init__(self, path, size, port=443):
        self.size = size
        self.connections = []
        self.listener = MptcpListener(path.server, port, self._on_connection)

    def _on_connection(self, conn):
        self.connections.append(conn)
        if self.size:
            conn.send(self.size)


class ClientSink:
    def __init__(self, path, port=443, address_wait=0.5):
        self.received = 0
        self.conn = MptcpConnection(path.ue, path.server.address, port,
                                    address_wait=address_wait)
        self.conn.on_data = self._on_data
        self.failures = []
        self.conn.on_fail = self.failures.append

    def _on_data(self, nbytes):
        self.received += nbytes

    def start(self):
        self.conn.connect()


def do_handover(sim, path, attach_delay=0.032, new_prefix="10.129.0",
                interruption=0.05):
    path.detach(interruption_s=interruption)
    sim.schedule(attach_delay, path.attach, new_prefix)


class TestConnReceiver:
    def test_in_order_delivery(self):
        recv = _ConnReceiver()
        assert recv.on_mapped_data(0, 100) == 100
        assert recv.on_mapped_data(100, 50) == 50
        assert recv.rcv_nxt == 150

    def test_duplicate_is_zero(self):
        recv = _ConnReceiver()
        recv.on_mapped_data(0, 100)
        assert recv.on_mapped_data(0, 100) == 0
        assert recv.on_mapped_data(50, 50) == 0

    def test_out_of_order_held_then_drained(self):
        recv = _ConnReceiver()
        assert recv.on_mapped_data(100, 50) == 0
        assert recv.on_mapped_data(0, 100) == 150

    def test_partial_overlap(self):
        recv = _ConnReceiver()
        recv.on_mapped_data(0, 100)
        # Re-injection overlapping already-delivered data.
        assert recv.on_mapped_data(50, 100) == 50
        assert recv.rcv_nxt == 150

    def test_interleaved_gaps(self):
        recv = _ConnReceiver()
        assert recv.on_mapped_data(200, 100) == 0
        assert recv.on_mapped_data(100, 100) == 0
        assert recv.on_mapped_data(0, 100) == 300

    def test_thousand_out_of_order_segments(self):
        """The drain is a single sorted pass, so a worst-case shuffle of
        1000 segments reassembles exactly once and leaves nothing pending."""
        import random
        rng = random.Random(7)
        segments = [(i * 100, 100) for i in range(1000)]
        rng.shuffle(segments)
        recv = _ConnReceiver()
        total = sum(recv.on_mapped_data(seq, length)
                    for seq, length in segments)
        assert total == 100_000
        assert recv.rcv_nxt == 100_000
        assert recv._pending == {}


class TestListenerTokens:
    def test_concurrent_fallback_clients_get_distinct_connections(self):
        """Regression: untagged (plain-TCP fallback) accepts used to all
        map to token 0, each overwriting the previous server connection."""
        sim = Simulator()
        path = make_path(sim)
        server = DownloadServer(path, 0)
        clients = [TcpConnection(path.ue, path.server.address, 443)
                   for _ in range(2)]
        received = [0, 0]
        for index, client in enumerate(clients):
            client.on_data = lambda n, meta, i=index: received.__setitem__(
                i, received[i] + n)
            client.connect()
        sim.run(until=1.0)
        assert len(server.connections) == 2
        assert server.connections[0] is not server.connections[1]
        assert set(server.listener.connections) == {-1, -2}
        # Each server connection reaches its own client, not the last one.
        server.connections[0].send(1000)
        server.connections[1].send(3000)
        sim.run(until=5.0)
        assert received == [1000, 3000]

    def test_unknown_token_join_rejected(self):
        """RFC 8684 §3.2: an MP_JOIN naming a token the listener does not
        know must be reset, not silently minted into a new connection."""
        sim = Simulator()
        path = make_path(sim)
        server = DownloadServer(path, 0)
        join = TcpConnection(path.ue, path.server.address, 443)
        join.syn_meta = MpJoin(token=0xDEAD_BEEF)
        join.connect()
        sim.run(until=2.0)
        assert server.listener.rejected_joins == 1
        assert server.connections == []
        assert server.listener.connections == {}


class TestBasicTransfer:
    def test_download_completes(self):
        sim = Simulator()
        path = make_path(sim)
        server = DownloadServer(path, 1_000_000)
        client = ClientSink(path)
        client.start()
        sim.run(until=10.0)
        assert client.received == 1_000_000

    def test_upload_completes(self):
        sim = Simulator()
        path = make_path(sim)
        server = DownloadServer(path, 0)
        got = [0]
        client = ClientSink(path)
        client.start()
        sim.run(until=1.0)
        server.connections[0].on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.conn.send(500_000)
        sim.run(until=10.0)
        assert got[0] == 500_000

    def test_single_subflow_without_mobility(self):
        sim = Simulator()
        path = make_path(sim)
        DownloadServer(path, 100_000)
        client = ClientSink(path)
        client.start()
        sim.run(until=5.0)
        assert client.conn.subflow_count == 1
        assert client.conn.handover_count == 0


class TestHandover:
    def test_handover_creates_new_subflow_and_transfer_continues(self):
        sim = Simulator()
        path = make_path(sim, shaper_rate=5e6)
        DownloadServer(path, 30_000_000)
        client = ClientSink(path)
        client.start()
        sim.schedule(3.0, do_handover, sim, path)
        sim.run(until=10.0)
        assert client.conn.handover_count == 1
        assert client.conn.subflow_count == 2
        # Transfer kept making progress after the switch.
        at_handover = client.received
        sim.run(until=15.0)
        assert client.received > at_handover

    def test_bytes_delivered_exactly_once_across_handover(self):
        """Re-injection must not double-deliver at the connection level."""
        sim = Simulator()
        path = make_path(sim, shaper_rate=5e6)
        size = 8_000_000
        DownloadServer(path, size)
        client = ClientSink(path)
        client.start()
        sim.schedule(2.0, do_handover, sim, path)
        sim.run(until=60.0)
        assert client.received == size

    def test_multiple_handovers(self):
        sim = Simulator()
        path = make_path(sim, shaper_rate=5e6)
        size = 12_000_000
        DownloadServer(path, size)
        client = ClientSink(path)
        client.start()
        prefixes = ["10.129.0", "10.130.0", "10.131.0"]
        for i, prefix in enumerate(prefixes):
            sim.schedule(2.0 + 3.0 * i,
                         lambda p=prefix: do_handover(sim, path, new_prefix=p))
        sim.run(until=90.0)
        assert client.conn.handover_count == 3
        assert client.conn.subflow_count == 4
        assert client.received == size

    def test_address_wait_delays_new_subflow(self):
        sim = Simulator()
        path = make_path(sim)
        DownloadServer(path, 10_000_000)

        slow = ClientSink(path, address_wait=0.5)
        slow.start()
        sim.schedule(3.0, do_handover, sim, path)
        sim.run(until=10.0)
        times = slow.conn.subflow_established_times
        assert len(times) == 2
        # New subflow cannot complete before handover(3.0) + wait(0.5).
        assert times[1] >= 3.5

    def test_modified_stack_reacts_faster(self):
        def run(wait):
            sim = Simulator()
            path = make_path(sim)
            DownloadServer(path, 10_000_000)
            client = ClientSink(path, address_wait=wait)
            client.start()
            sim.schedule(3.0, do_handover, sim, path)
            sim.run(until=10.0)
            return client.conn.subflow_established_times[1]

        assert run(0.05) < run(0.5)

    def test_remove_addr_cleans_up_server_subflows(self):
        sim = Simulator()
        path = make_path(sim)
        server = DownloadServer(path, 20_000_000)
        client = ClientSink(path)
        client.start()
        sim.schedule(2.0, do_handover, sim, path)
        sim.run(until=20.0)
        conn = server.connections[0]
        assert len(conn.subflows) == 1
        assert conn.active_subflow.remote_ip.startswith("10.129.0.")

    def test_no_new_address_times_out(self):
        sim = Simulator()
        path = make_path(sim)
        DownloadServer(path, 5_000_000)
        client = ClientSink(path)
        client.start()
        sim.run(until=2.0)
        path.detach()  # never re-attach
        sim.run(until=70.0)
        assert client.failures == ["no address within timeout"]
        assert client.conn.closed

    def test_reattach_just_before_timeout_survives(self):
        sim = Simulator()
        path = make_path(sim)
        DownloadServer(path, 5_000_000)
        client = ClientSink(path)
        client.start()
        sim.run(until=2.0)
        path.detach()
        sim.schedule(55.0, path.attach, "10.129.0")
        sim.run(until=120.0)
        assert client.failures == []
        assert client.received == 5_000_000


class TestThroughputShape:
    def test_post_handover_spike_with_policer(self):
        """Fig 8: after a handover the fresh subflow + accumulated token
        bucket credit briefly exceed steady-state throughput."""
        sim = Simulator()
        path = make_path(sim, shaper_rate=1.5e6)
        DownloadServer(path, 50_000_000)
        client = ClientSink(path)
        client.start()
        deliveries = []
        client.conn.on_data = lambda n: deliveries.append((sim.now, n))
        sim.schedule(15.0, do_handover, sim, path)
        sim.run(until=30.0)

        # (a) the handover creates a delivery gap at least as long as the
        # address-worker wait period...
        before = max(t for t, _ in deliveries if t < 15.0)
        after = min(t for t, _ in deliveries if t > 15.0)
        assert after - before >= 0.5

        # (b) ...and right after it, slow-start against the accumulated
        # token-bucket credit overshoots the steady policed rate.
        def rate(start, end):
            total = sum(n for t, n in deliveries if start <= t < end)
            return total * 8 / (end - start)

        steady = rate(5.0, 13.0)
        post = rate(after, after + 1.0)
        assert post > 1.3 * steady
