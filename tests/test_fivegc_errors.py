"""Error-path tests for the 5G network functions."""

import pytest

from repro.crypto.keypool import pooled_keypair
from repro.fivegc import (
    Ausf,
    Gnb,
    Smf,
    Udm,
    Ue5G,
    conceal,
    make_supi,
    nas5g,
)
from repro.fivegc.nf import Amf
from repro.fivegc.topology5g import (
    AMF_ADDRESS,
    AUSF_ADDRESS,
    GNB_ADDRESS,
    SMF_ADDRESS,
    Topology5G,
    UDM_ADDRESS,
)
from repro.lte.aka import UsimState
from repro.net import Simulator

K = bytes(range(16))


def build(provision=True, bar=False):
    sim = Simulator()
    topo = Topology5G.build(sim, "local")
    home_key = pooled_keypair(890)
    udm = Udm(topo.udm_host, home_network_key=home_key)
    ausf = Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
    smf = Smf(topo.smf_host)
    amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
    Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
    supi = make_supi(77)
    if provision:
        record = udm.provision(supi, K)
        record.barred = bar
    ue = Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(k=K),
              home_key.public_key, serving_network=amf.serving_network)
    return sim, topo, udm, ausf, smf, amf, ue, home_key


class TestUdmErrors:
    def test_barred_supi_rejected(self):
        sim, *_, amf, ue, _ = build(bar=True)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results and not results[0].success
        assert amf.registrations_rejected == 1

    def test_garbage_suci_rejected(self):
        sim, topo, udm, ausf, smf, amf, ue, home_key = build()
        from repro.fivegc.identifiers5g import Suci
        from repro.lte.identifiers import TEST_PLMN

        # Bypass the UE: inject a registration with an undecryptable SUCI.
        bogus = Suci(plmn=TEST_PLMN, concealed_msin=b"\x00" * 160)
        ue.initial_request = lambda: nas5g.RegistrationRequest(suci=bogus)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results and not results[0].success
        assert "deconcealment" in results[0].cause


class TestAusfErrors:
    def test_wrong_res_star_rejected_at_seaf(self):
        """A UE that fails the challenge never even reaches the AUSF
        confirm step (the SEAF's local HRES* check fires first)."""
        sim, topo, udm, ausf, smf, amf, ue, home_key = build()
        ue.usim = UsimState(k=bytes(16))  # wrong K
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results and not results[0].success

    def test_confirm_without_context_rejected(self):
        sim, topo, udm, ausf, smf, amf, ue, home_key = build()
        responses = []
        amf.on(nas5g.AusfConfirmResponse,
               lambda src, msg: responses.append(msg))
        amf.send(AUSF_ADDRESS, nas5g.AusfConfirmRequest(
            correlation=999, res_star=b"x" * 16), size=64)
        sim.run(until=1.0)
        assert responses and not responses[0].success


class TestPduSessionErrors:
    def test_session_before_registration_rejected(self):
        sim, topo, udm, ausf, smf, amf, ue, home_key = build()
        with pytest.raises(RuntimeError):
            ue.establish_session()

    def test_reregistration_after_reject_succeeds(self):
        sim, topo, udm, ausf, smf, amf, ue, home_key = build(provision=False)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert not results[0].success
        udm.provision(ue.supi, K)
        ue.usim = UsimState(k=K)
        ue.register()
        sim.run(until=4.0)
        assert results[-1].success
