"""Integration tests for the TCP implementation over simulated links."""

import random

import pytest

from repro.net import (
    Host,
    Link,
    Packet,
    Simulator,
    TcpConnection,
    TcpListener,
)


def make_pair(sim, bandwidth=10e6, delay=0.01, loss=0.0, seed=1,
              queue_limit=256 * 1024):
    """Two directly-linked hosts."""
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    Link(sim, "ab", a, b, bandwidth_bps=bandwidth, delay_s=delay,
         loss_rate=loss, queue_limit_bytes=queue_limit,
         rng=random.Random(seed))
    return a, b


class ServerSink:
    """Accepts one connection and counts delivered bytes."""

    def __init__(self, host, port=80):
        self.received = 0
        self.closed = False
        self.conn = None
        self.listener = TcpListener(host, port, self._accept)

    def _accept(self, conn):
        self.conn = conn
        conn.on_data = self._on_data
        conn.on_close = self._on_close

    def _on_data(self, nbytes, meta):
        self.received += nbytes

    def _on_close(self):
        self.closed = True


class TestHandshake:
    def test_three_way_handshake(self):
        sim = Simulator()
        a, b = make_pair(sim, delay=0.05)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        established = []
        client.on_established = lambda: established.append(sim.now)
        client.connect()
        sim.run(until=1.0)
        assert established and established[0] == pytest.approx(0.1, rel=0.2)
        assert client.state == "ESTABLISHED"
        assert sink.conn.state == "ESTABLISHED"

    def test_syn_retransmission_on_loss(self):
        sim = Simulator()
        a, b = make_pair(sim)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        established = []
        client.on_established = lambda: established.append(sim.now)
        # Take the link down so the first SYN dies, then bring it back.
        a.links[0].set_up(False)
        client.connect()
        sim.schedule(0.5, a.links[0].set_up, True)
        sim.run(until=5.0)
        # First SYN at t=0 lost; retry after INITIAL_RTO=1 s succeeds.
        assert established and established[0] == pytest.approx(1.02, rel=0.1)

    def test_connect_gives_up_after_max_retries(self):
        sim = Simulator()
        a, b = make_pair(sim)
        a.links[0].set_up(False)
        client = TcpConnection(a, "10.0.0.2", 80)
        failures = []
        client.on_fail = failures.append
        client.connect()
        sim.run(until=300.0)
        assert failures == ["connect timed out"]
        assert client.state == "DONE"

    def test_connect_twice_raises(self):
        sim = Simulator()
        a, b = make_pair(sim)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.connect()
        with pytest.raises(RuntimeError):
            client.connect()


class TestDataTransfer:
    def test_small_transfer_delivers_exactly(self):
        sim = Simulator()
        a, b = make_pair(sim)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(5000)
        client.connect()
        sim.run(until=2.0)
        assert sink.received == 5000

    def test_large_transfer_delivers_exactly(self):
        sim = Simulator()
        a, b = make_pair(sim)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(2_000_000)
        client.connect()
        sim.run(until=10.0)
        assert sink.received == 2_000_000
        assert client.stats.bytes_acked == 2_000_000

    def test_transfer_with_loss_still_delivers_exactly(self):
        sim = Simulator()
        a, b = make_pair(sim, loss=0.02, seed=3)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(500_000)
        client.connect()
        sim.run(until=60.0)
        assert sink.received == 500_000
        assert client.stats.retransmissions > 0

    def test_bidirectional_transfer(self):
        sim = Simulator()
        a, b = make_pair(sim)
        server_received = [0]
        client_received = [0]

        def accept(conn):
            conn.on_data = lambda n, m: server_received.__setitem__(
                0, server_received[0] + n)
            conn.send(70_000)

        TcpListener(b, 80, accept)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_data = lambda n, m: client_received.__setitem__(
            0, client_received[0] + n)
        client.on_established = lambda: client.send(30_000)
        client.connect()
        sim.run(until=10.0)
        assert server_received[0] == 30_000
        assert client_received[0] == 70_000

    def test_throughput_approaches_bottleneck(self):
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=5e6, delay=0.02)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(20_000_000)
        client.connect()
        sim.run(until=10.0)
        achieved = sink.received * 8 / 10.0
        assert achieved > 0.7 * 5e6

    def test_send_invalid_size(self):
        sim = Simulator()
        a, b = make_pair(sim)
        client = TcpConnection(a, "10.0.0.2", 80)
        with pytest.raises(ValueError):
            client.send(0)

    def test_meta_passes_through(self):
        sim = Simulator()
        a, b = make_pair(sim)
        metas = []

        def accept(conn):
            conn.on_data = lambda n, m: metas.append((n, m))

        TcpListener(b, 80, accept)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(100, meta="request-1")
        client.connect()
        sim.run(until=1.0)
        assert metas == [(100, "request-1")]


class TestCongestionControl:
    def test_slow_start_doubles_cwnd(self):
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=100e6, delay=0.05)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(10_000_000)
        client.connect()
        initial = client.cwnd
        sim.run(until=0.5)  # a few RTTs of slow start, no loss yet
        assert client.cwnd > 2 * initial

    def test_loss_reduces_cwnd(self):
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=2e6, delay=0.02,
                         queue_limit=30_000, seed=5)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(10_000_000)
        client.connect()
        sim.run(until=10.0)
        assert client.stats.fast_retransmits > 0
        # cwnd should have been cut well below the receive window.
        assert client.cwnd < client.receive_window

    def test_rto_after_blackout_and_recovery(self):
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=5e6)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(3_000_000)
        client.connect()
        sim.schedule(1.0, a.links[0].interrupt, 1.5)
        sim.run(until=30.0)
        assert client.stats.timeouts >= 1
        assert sink.received == 3_000_000

    def test_rtt_estimation(self):
        sim = Simulator()
        a, b = make_pair(sim, delay=0.05)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(100_000)
        client.connect()
        sim.run(until=5.0)
        assert client.srtt == pytest.approx(0.1, rel=0.5)


class TestClose:
    def test_graceful_close_after_transfer(self):
        sim = Simulator()
        a, b = make_pair(sim)
        sink = ServerSink(b)
        closed = []
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_close = lambda: closed.append(sim.now)
        client.on_established = lambda: (client.send(10_000), client.close())
        client.connect()
        sim.run(until=5.0)
        assert sink.received == 10_000
        assert sink.closed
        assert closed
        assert client.state == "DONE"

    def test_send_after_close_raises(self):
        sim = Simulator()
        a, b = make_pair(sim)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.connect()
        client.close()
        with pytest.raises(RuntimeError):
            client.send(100)

    def test_abort_fires_on_fail(self):
        sim = Simulator()
        a, b = make_pair(sim)
        ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        reasons = []
        client.on_fail = reasons.append
        client.connect()
        sim.run(until=1.0)
        client.abort("test teardown")
        assert reasons == ["test teardown"]

    def test_stale_address_packets_ignored(self):
        """Packets addressed to an invalidated address are dropped."""
        sim = Simulator()
        a, b = make_pair(sim)
        sink = ServerSink(b)
        client = TcpConnection(a, "10.0.0.2", 80)
        client.on_established = lambda: client.send(3_000_000)
        client.connect()
        sim.run(until=1.0)
        before = sink.received
        a.set_address("10.0.0.99")  # the server still sends ACKs to .1
        sim.run(until=3.0)
        # Transfer stalls: the client never sees ACKs for new data.
        assert sink.received - before < 2_000_000


class TestFairness:
    def test_two_flows_share_bottleneck(self):
        """Two competing Reno flows through one bottleneck converge to a
        roughly fair share (Jain's index > 0.9)."""
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=10e6, delay=0.02,
                         queue_limit=128 * 1024, seed=9)
        received = {1: 0, 2: 0}

        def accept(conn):
            port = conn.local_port

            def on_data(n, m, p=port):
                received[p - 8000] += n

            conn.on_data = on_data

        TcpListener(b, 8001, accept)
        TcpListener(b, 8002, accept)
        for port in (8001, 8002):
            client = TcpConnection(a, "10.0.0.2", port)
            client.on_established = (
                lambda c=client: c.send(100_000_000))
            client.connect()
        sim.run(until=30.0)
        x, y = received[1], received[2]
        fairness = (x + y) ** 2 / (2 * (x ** 2 + y ** 2))
        assert fairness > 0.9
        # And together they saturate the link.
        assert (x + y) * 8 / 30 > 0.75 * 10e6

    def test_late_flow_gets_room(self):
        """A second flow starting against an established one still ramps
        up to a meaningful share."""
        sim = Simulator()
        a, b = make_pair(sim, bandwidth=10e6, delay=0.02,
                         queue_limit=128 * 1024, seed=11)
        received = {1: 0, 2: 0}

        def accept(conn):
            port = conn.local_port

            def on_data(n, m, p=port):
                received[p - 8000] += n

            conn.on_data = on_data

        TcpListener(b, 8001, accept)
        TcpListener(b, 8002, accept)
        first = TcpConnection(a, "10.0.0.2", 8001)
        first.on_established = lambda: first.send(100_000_000)
        first.connect()

        def start_second():
            second = TcpConnection(a, "10.0.0.2", 8002)
            second.on_established = lambda: second.send(100_000_000)
            second.connect()

        sim.schedule(10.0, start_second)
        sim.run(until=40.0)
        # Over the contended window the late flow got a real share.
        late_share = received[2] / (received[1] + received[2])
        assert late_share > 0.2
