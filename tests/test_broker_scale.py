"""Sharded/batched broker auth pipeline: routing, rebalance, pipeline
equivalence + determinism, throughput acceptance, SMF pool release, and
billing archival."""

import random

import pytest

from repro.core.billing import ArchivedLedger, BillingError
from repro.core.qos import QosCapabilities
from repro.core.sap import (
    BrokerSap,
    BrokerSubscriber,
    BtelcoSap,
    BtelcoSapConfig,
    DenialCause,
    SapError,
    UeSap,
    UeSapCredentials,
)
from repro.crypto import (
    CertificateAuthority,
    clear_verify_cache,
    generate_keypair,
    verify_cache_stats,
)
from repro.obs import Obs, spans_to_jsonl


@pytest.fixture(scope="module")
def world():
    rng = random.Random(0x5CA1E)
    ca = CertificateAuthority(key=generate_keypair(rng=rng))
    broker_key = generate_keypair(rng=rng)
    telco_key = generate_keypair(rng=rng)
    ue_key = generate_keypair(rng=rng)
    telco_cert = ca.issue("t1.example", "btelco", telco_key.public_key)
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t1.example", key=telco_key, certificate=telco_cert,
        qos_capabilities=QosCapabilities(supported_qcis=(8, 9)),
        ca_public_key=ca.public_key))
    return dict(ca=ca, broker_key=broker_key, telco=telco, ue_key=ue_key)


def make_broker(world, num_shards=1, subscribers=("alice",)):
    broker = BrokerSap(id_b="b.example", key=world["broker_key"],
                       ca_public_key=world["ca"].public_key,
                       num_shards=num_shards)
    for id_u in subscribers:
        broker.enroll(BrokerSubscriber(
            id_u=id_u, public_key=world["ue_key"].public_key))
    return broker


def creds_for(world, id_u="alice"):
    return UeSapCredentials(
        id_u=id_u, id_b="b.example", ue_key=world["ue_key"],
        broker_public_key=world["broker_key"].public_key)


def attach(world, broker, id_u="alice", now=10.0):
    ue = UeSap(creds_for(world, id_u))
    req_t = world["telco"].augment_request(ue.craft_request("t1.example"))
    return req_t, broker.process_request(req_t, now)


class TestShardRouting:
    def test_identical_construction_identical_routing(self, world):
        a = make_broker(world, num_shards=8)
        b = make_broker(world, num_shards=8)
        ids = [f"sub-{i:04d}" for i in range(300)]
        assert [a.shard_of(i).shard_id for i in ids] \
            == [b.shard_of(i).shard_id for i in ids]

    def test_assignment_spreads_across_shards(self, world):
        broker = make_broker(world, num_shards=8)
        owners = {broker.shard_of(f"sub-{i:04d}").shard_id
                  for i in range(300)}
        assert owners == set(range(8))

    def test_enrollment_lands_on_owner_shard(self, world):
        ids = tuple(f"sub-{i:04d}" for i in range(40))
        broker = make_broker(world, num_shards=4, subscribers=ids)
        for shard in broker.shards:
            for id_u in shard.subscribers:
                assert broker.shard_of(id_u).shard_id == shard.shard_id
        assert set(broker.subscribers) == set(ids)

    def test_stats_per_shard_breakdown_keeps_flat_keys(self, world):
        ids = tuple(f"sub-{i:04d}" for i in range(20))
        broker = make_broker(world, num_shards=4, subscribers=ids)
        attach(world, broker, "sub-0003")
        stats = broker.stats()
        for key in ("attach_ok", "replay_hits", "grants_active",
                    "dup_requests_served", "subscribers"):
            assert key in stats
        assert stats["num_shards"] == 4
        assert len(stats["shards"]) == 4
        assert sum(s["attach_ok"] for s in stats["shards"]) \
            == stats["attach_ok"] == 1
        assert sum(s["subscribers"] for s in stats["shards"]) == 20


class TestRebalance:
    def test_replayed_nonce_denied_after_adding_shard(self, world):
        broker = make_broker(world, num_shards=2)
        ue = UeSap(creds_for(world))
        req_u = ue.craft_request("t1.example")
        broker.process_request(
            world["telco"].augment_request(req_u), now=10.0)
        broker.add_shard()
        # Same nonce in a different datagram (digest changes): replay.
        tampered = world["telco"].augment_request(req_u,
                                                  lawful_intercept=True)
        with pytest.raises(SapError) as excinfo:
            broker.process_request(tampered, now=11.0)
        assert excinfo.value.cause == DenialCause.REPLAY

    def test_grants_and_subscribers_survive_rebalance(self, world):
        ids = tuple(f"sub-{i:04d}" for i in range(24))
        broker = make_broker(world, num_shards=2, subscribers=ids)
        grants = [attach(world, broker, id_u)[1][2] for id_u in ids[:6]]
        broker.set_shard_count(6)
        assert set(broker.subscribers) == set(ids)
        assert broker.grants_active == 6
        for grant in grants:
            owner = broker.shard_for_session(grant.session_id)
            assert owner == broker.shard_of(grant.id_u).shard_id

    def test_remove_shard_hands_state_back(self, world):
        ids = tuple(f"sub-{i:04d}" for i in range(24))
        broker = make_broker(world, num_shards=4, subscribers=ids)
        ue = UeSap(creds_for(world, ids[0]))
        req_u = ue.craft_request("t1.example")
        broker.process_request(
            world["telco"].augment_request(req_u), now=10.0)
        removed = max(s.shard_id for s in broker.shards)
        broker.remove_shard(removed)
        assert broker.num_shards == 3
        assert set(broker.subscribers) == set(ids)
        assert broker.grants_active == 1
        tampered = world["telco"].augment_request(req_u,
                                                  lawful_intercept=True)
        with pytest.raises(SapError) as excinfo:
            broker.process_request(tampered, now=11.0)
        assert excinfo.value.cause == DenialCause.REPLAY

    def test_retransmission_still_served_after_rebalance(self, world):
        broker = make_broker(world, num_shards=2)
        req_t, (sealed_t, _sealed_u, grant) = attach(world, broker)
        broker.add_shard()
        replay_t, _replay_u, replay_grant = broker.process_request(
            req_t, now=11.0)
        assert replay_grant.session_id == grant.session_id
        assert broker.dup_requests_served == 1

    def test_cannot_remove_last_shard(self, world):
        broker = make_broker(world, num_shards=1)
        with pytest.raises(ValueError):
            broker.remove_shard(0)


class TestVerifyCache:
    def test_verify_cache_hits_and_clear(self, world):
        clear_verify_cache()
        key = generate_keypair(rng=random.Random(0xCAC4E))
        signature = key.sign(b"message")
        assert key.public_key.verify(b"message", signature)
        before = verify_cache_stats()["hits"]
        assert key.public_key.verify(b"message", signature)
        assert verify_cache_stats()["hits"] == before + 1
        clear_verify_cache()
        stats = verify_cache_stats()
        assert stats["hits"] == 0 and stats["size"] == 0


class TestPipelineEndToEnd:
    def test_pipeline_matches_serial_outcomes(self):
        from repro.testbed.broker_scale import run_cell
        serial = run_cell(24, 1, rat="lte", pipeline=False, sites=8)
        piped = run_cell(24, 4, rat="lte", pipeline=True, sites=8)
        assert serial.attached == piped.attached == 24
        assert serial.failed == piped.failed == 0
        assert serial.broker["attach_ok"] == piped.broker["attach_ok"]
        assert piped.broker["pipeline_requests"] == 24
        assert piped.broker["pipeline_batches"] >= 1

    def test_pipeline_traced_runs_are_byte_identical(self):
        from repro.testbed.broker_scale import run_cell

        def traced():
            obs = Obs()
            run_cell(16, 4, rat="lte", pipeline=True, sites=8, obs=obs)
            return spans_to_jsonl(obs.tracer.spans())

        assert traced() == traced()

    def test_throughput_speedup_at_least_3x(self):
        from repro.testbed.broker_scale import run_cell
        base = run_cell(64, 1, rat="lte", pipeline=False)
        pipe = run_cell(64, 8, rat="lte", pipeline=True)
        assert base.attached == pipe.attached == 64
        assert pipe.attaches_per_sec >= 3.0 * base.attaches_per_sec


class TestChaosWithPipeline:
    def test_no_unauthorized_session_seconds(self):
        from repro.emulation.chaos import run_chaos
        report = run_chaos(
            attaches=60, revoke_every=5, base_loss=0.02, seed=7,
            on_network_built=lambda network:
                network.brokerd.configure_pipeline(enabled=True, shards=4))
        assert report.unauthorized_session_seconds == 0
        assert report.successes > 0
        assert report.revocations > 0


class TestSmfPoolRelease:
    def _baseline_5g(self):
        from repro.fivegc import Amf, Ausf, Gnb, Smf, Udm, Ue5G, make_supi
        from repro.fivegc.topology5g import (
            AMF_ADDRESS, AUSF_ADDRESS, GNB_ADDRESS, SMF_ADDRESS,
            Topology5G, UDM_ADDRESS)
        from repro.crypto.keypool import pooled_keypair
        from repro.lte.aka import UsimState
        from repro.net import Simulator

        k = bytes(range(16))
        sim = Simulator()
        topo = Topology5G.build(sim, "local")
        home_key = pooled_keypair(812)
        udm = Udm(topo.udm_host, home_network_key=home_key)
        Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
        smf = Smf(topo.smf_host)
        amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
        Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
        supi = make_supi(7)
        udm.provision(supi, k)
        ue = Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(k=k),
                  home_key.public_key, serving_network=amf.serving_network)
        ue.on_registration_done = lambda result: None
        ue.on_session_done = lambda result: None
        return sim, smf, amf, ue

    def test_dereg_churn_keeps_pool_bounded(self):
        sim, smf, amf, ue = self._baseline_5g()
        pool_size = len(smf.upf.pool._available)
        cycles = 6
        for _ in range(cycles):
            ue.register()
            sim.run(until=sim.now + 2.0)
            ue.establish_session()
            sim.run(until=sim.now + 1.0)
            ue.deregister_and_forget()
            sim.run(until=sim.now + 1.0)
        assert smf.sessions_created == cycles
        assert smf.sessions_released == cycles
        assert smf.release_misses == 0
        assert len(smf.upf.bearers) == 0
        assert len(smf.upf.pool._available) == pool_size
        assert amf.smf_releases_sent == cycles
        assert amf.smf_release_give_ups == 0
        assert amf.stats()["contexts"] == 0

    def test_release_for_unknown_subscriber_is_counted_miss(self):
        from repro.fivegc.nf import UeContext5G
        sim, smf, amf, ue = self._baseline_5g()
        ghost = UeContext5G(ran_ue_id=999, ran_ip="0.0.0.0",
                            supi="imsi-00101-0000000099",
                            pdu_session_id=1, ue_ip="10.128.0.99")
        amf._release_pdu_session(ghost)
        sim.run(until=2.0)
        assert smf.release_misses == 1
        assert smf.sessions_released == 0


class TestBillingArchive:
    def _settled_verifier(self):
        from tests.test_billing import (  # reuse the billing fixtures
            make_verifier, upload_pair)
        rng = random.Random(0xB111)
        keys = {"broker": generate_keypair(rng=rng),
                "ue": generate_keypair(rng=rng),
                "telco": generate_keypair(rng=rng)}
        verifier, grant = make_verifier(keys)
        upload_pair(verifier, keys, ue_dl=1_000_000, t_dl=1_000_000)
        return verifier, grant

    def test_archive_retires_ledger_and_audit_retrieves_it(self):
        verifier, grant = self._settled_verifier()
        archived = []
        verifier.on_archive = archived.append
        invoice = verifier.archive_session(grant.session_id, now=120.0)
        assert grant.session_id not in verifier.sessions
        record = verifier.audit(grant.session_id)
        assert isinstance(record, ArchivedLedger)
        assert record.invoice == invoice
        assert record.checked_pairs == 1
        assert record.ue_report_count == record.btelco_report_count == 1
        assert record.settled_at == 120.0
        assert archived == [record]
        assert verifier.audit_subscriber(grant.id_u) == (record,)
        assert verifier.ledgers_archived == 1

    def test_archive_unknown_session_raises(self):
        verifier, grant = self._settled_verifier()
        with pytest.raises(BillingError):
            verifier.archive_session("no-such-session")
        verifier.archive_session(grant.session_id)
        with pytest.raises(BillingError):   # archive is append-only
            verifier.archive_session(grant.session_id)

    def test_archived_session_refuses_new_uploads(self):
        verifier, grant = self._settled_verifier()
        verifier.archive_session(grant.session_id)
        rejected_before = verifier.rejected_uploads
        from repro.core.billing import REPORTER_UE, TrafficReportUpload
        upload = TrafficReportUpload(session_id=grant.session_id, seq=9,
                                     reporter=REPORTER_UE, blob=b"x",
                                     signature=b"y")
        assert not verifier.ingest(upload, now=200.0)
        assert verifier.rejected_uploads == rejected_before + 1
