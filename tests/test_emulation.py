"""Tests for the §6.2 emulation harness: routes, radio, paired scenarios."""

import pytest

from repro.emulation import (
    ARCH_CELLBRICKS,
    ARCH_MNO,
    CapacityProcess,
    EmulationConfig,
    PairedEmulation,
    ROUTES,
    generate_handover_schedule,
)
from repro.emulation.radio import MIN_HANDOVER_SPACING
from repro.analysis.stats import mean, stddev
from repro.net import Simulator


class TestRoutes:
    def test_all_routes_have_both_conditions(self):
        for route in ROUTES.values():
            assert route.day.policed_rate_bps is not None
            assert route.night.policed_rate_bps is None

    def test_mttho_matches_table1_calibration(self):
        assert ROUTES["suburb"].day.mttho_s == 73.50
        assert ROUTES["downtown"].night.mttho_s == 50.60
        assert ROUTES["highway"].night.mttho_s == 25.50

    def test_highway_night_capacity_lowest(self):
        caps = {name: ROUTES[name].night.capacity_mean_bps
                for name in ROUTES}
        assert caps["highway"] == min(caps.values())

    def test_invalid_time_of_day(self):
        with pytest.raises(ValueError):
            ROUTES["suburb"].conditions("dusk")


class TestHandoverSchedule:
    def test_mean_spacing_near_mttho(self):
        events = generate_handover_schedule(duration=100_000, mttho_s=50,
                                            seed=1)
        gaps = [events[i].at - events[i - 1].at
                for i in range(1, len(events))]
        assert mean(gaps) == pytest.approx(50, rel=0.1)

    def test_minimum_spacing_respected(self):
        events = generate_handover_schedule(duration=10_000, mttho_s=10,
                                            seed=2)
        gaps = [events[i].at - events[i - 1].at
                for i in range(1, len(events))]
        assert min(gaps) >= MIN_HANDOVER_SPACING

    def test_warmup_respected(self):
        events = generate_handover_schedule(duration=1000, mttho_s=20,
                                            seed=3, warmup=30.0)
        assert all(e.at >= 30.0 for e in events)

    def test_deterministic_for_seed(self):
        a = generate_handover_schedule(1000, 50, seed=7)
        b = generate_handover_schedule(1000, 50, seed=7)
        assert a == b

    def test_gap_durations_in_range(self):
        events = generate_handover_schedule(10_000, 30, seed=4)
        assert all(0.04 <= e.gap_s <= 0.12 for e in events)

    def test_mttho_below_spacing_rejected(self):
        with pytest.raises(ValueError):
            generate_handover_schedule(1000, mttho_s=5)


class TestCapacityProcess:
    def test_stationary_mean_near_target(self):
        sim = Simulator()
        conditions = ROUTES["downtown"].night
        process = CapacityProcess(sim, conditions, seed=5)
        samples = [process.sample() for _ in range(5000)]
        assert mean(samples) == pytest.approx(
            conditions.capacity_mean_bps, rel=0.15)

    def test_clipped_to_bounds(self):
        sim = Simulator()
        conditions = ROUTES["downtown"].night
        process = CapacityProcess(sim, conditions, seed=6)
        samples = [process.sample() for _ in range(5000)]
        assert min(samples) >= 1.5e6
        assert max(samples) <= conditions.capacity_max_bps

    def test_correlated_in_time(self):
        """AR(1): adjacent samples must correlate (TCP rides the swells)."""
        sim = Simulator()
        conditions = ROUTES["downtown"].night
        process = CapacityProcess(sim, conditions, seed=7)
        samples = [process.sample() for _ in range(4000)]
        mu = mean(samples)
        num = sum((samples[i] - mu) * (samples[i - 1] - mu)
                  for i in range(1, len(samples)))
        den = sum((s - mu) ** 2 for s in samples)
        assert num / den > 0.5

    def test_listeners_receive_samples(self):
        sim = Simulator()
        process = CapacityProcess(sim, ROUTES["downtown"].night, seed=8)
        seen = []
        process.listeners.append(seen.append)
        process.start(duration=10)
        sim.run(until=12)
        assert len(seen) == 10


class TestPairedEmulation:
    def test_day_iperf_is_policed_for_both(self):
        sim = Simulator()
        config = EmulationConfig(route="downtown", time_of_day="day",
                                 duration=30, seed=11, handovers=False)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_iperf()
        for arch in (ARCH_MNO, ARCH_CELLBRICKS):
            assert 0.8 < stats[arch].average_mbps(30) < 1.4

    def test_night_exceeds_day(self):
        def run(time_of_day):
            sim = Simulator()
            config = EmulationConfig(route="downtown",
                                     time_of_day=time_of_day,
                                     duration=30, seed=11, handovers=False)
            return PairedEmulation(sim, config).run_iperf()[
                ARCH_MNO].average_mbps(30)

        assert run("night") > 5 * run("day")

    def test_handover_changes_cb_address_not_mno(self):
        sim = Simulator()
        config = EmulationConfig(route="highway", time_of_day="day",
                                 duration=40, seed=13)
        emulation = PairedEmulation(sim, config)
        mno_before = emulation.mno.ue.address
        cb_before = emulation.cb.ue.address
        emulation.handover_events = emulation.handover_events[:1] or \
            emulation.handover_events
        stats = emulation.run_ping()
        if emulation.handovers_applied:
            assert emulation.mno.ue.address == mno_before
            assert emulation.cb.ue.address != cb_before

    def test_cb_slowdown_is_small(self):
        """The headline result: CellBricks costs at most a few percent."""
        sim = Simulator()
        config = EmulationConfig(route="highway", time_of_day="day",
                                 duration=90, seed=17)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_iperf()
        mno = stats[ARCH_MNO].average_mbps(90)
        cb = stats[ARCH_CELLBRICKS].average_mbps(90)
        slowdown = (mno - cb) / mno * 100
        assert emulation.handovers_applied >= 1
        assert -6.0 < slowdown < 6.0

    def test_voip_mos_survives_handovers(self):
        sim = Simulator()
        config = EmulationConfig(route="highway", time_of_day="day",
                                 duration=60, seed=19)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_voip()
        assert stats[ARCH_MNO].mos > 4.0
        assert stats[ARCH_CELLBRICKS].mos > 3.8

    def test_ping_p50_in_expected_envelope(self):
        sim = Simulator()
        config = EmulationConfig(route="suburb", time_of_day="day",
                                 duration=40, seed=23)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_ping()
        for arch in (ARCH_MNO, ARCH_CELLBRICKS):
            assert 40 < stats[arch].p50_ms < 60
