"""Tests for the §6.1 attach-latency benchmark harness (Fig 7)."""

import pytest

from repro.testbed import (
    ARCH_BASELINE,
    ARCH_CELLBRICKS,
    PLACEMENTS,
    run_attach_benchmark,
)


class TestAttachBenchmark:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for placement in PLACEMENTS:
            for arch in (ARCH_BASELINE, ARCH_CELLBRICKS):
                out[(arch, placement)] = run_attach_benchmark(
                    arch, placement, trials=5)
        return out

    def test_all_cells_produce_samples(self, results):
        for result in results.values():
            assert len(result.samples) == 5
            assert result.total_ms > 0

    def test_breakdown_sums_to_total(self, results):
        for result in results.values():
            for sample in result.samples:
                parts = (sample.agw_brokerd_ms + sample.enb_ms
                         + sample.ue_ms + sample.other_ms)
                assert parts == pytest.approx(sample.total_ms, rel=0.01)

    def test_remote_placement_grows_other_not_processing(self, results):
        """Moving the DB to the cloud only adds network time."""
        for arch in (ARCH_BASELINE, ARCH_CELLBRICKS):
            local = results[(arch, "local")]
            east = results[(arch, "us-east-1")]
            assert east.other_ms > local.other_ms + 50
            assert east.agw_brokerd_ms == pytest.approx(
                local.agw_brokerd_ms, rel=0.05)

    def test_cellbricks_wins_remote_placements(self, results):
        """The headline Fig 7 shape: one cloud RTT instead of two."""
        for placement, min_gain in (("us-west-1", 0.05), ("us-east-1", 0.3)):
            bl = results[(ARCH_BASELINE, placement)].total_ms
            cb = results[(ARCH_CELLBRICKS, placement)].total_ms
            assert (bl - cb) / bl > min_gain

    def test_locals_comparable(self, results):
        bl = results[(ARCH_BASELINE, "local")].total_ms
        cb = results[(ARCH_CELLBRICKS, "local")].total_ms
        assert abs(bl - cb) < 3.0

    def test_absolute_values_near_paper(self, results):
        paper = {
            (ARCH_BASELINE, "us-west-1"): 36.85,
            (ARCH_CELLBRICKS, "us-west-1"): 31.68,
            (ARCH_BASELINE, "us-east-1"): 166.48,
            (ARCH_CELLBRICKS, "us-east-1"): 98.62,
        }
        for key, expected in paper.items():
            assert results[key].total_ms == pytest.approx(expected, rel=0.08)

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_attach_benchmark("BL", "mars-east-1", trials=1)
        with pytest.raises(ValueError):
            run_attach_benchmark("XX", "local", trials=1)
