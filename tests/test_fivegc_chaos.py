"""5G control-plane parity: reliability, lifecycle, and leak regressions.

The acceptance tests for the fivegc port of the LTE reliable/lifecycle
stack: seeded chaos churn over the gNB/AMF network, revocation
convergence under loss, duplicate-challenge idempotence at the UE, and
regression tests for the AMF/CellBricksAmf map leaks
(``_by_correlation``, ``_pending_sap``, rejected-context residue).
"""

import pytest

from repro.core import Brokerd, UeSapCredentials
from repro.core.btelco5g import CellBricksAmf, CellBricksUe5G
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.emulation import ChaosSchedule, brownout, outage, run_chaos
from repro.fivegc import Amf, Ausf, Gnb, Smf, Udm, Ue5G, make_supi, nas5g
from repro.fivegc.topology5g import (
    AMF_ADDRESS,
    AUSF_ADDRESS,
    BROKER_ADDRESS,
    GNB_ADDRESS,
    SMF_ADDRESS,
    Topology5G,
    UDM_ADDRESS,
)
from repro.lte.aka import UsimState
from repro.net import Simulator
from repro.obs.export import LEG_NAMES, attach_leg_breakdown
from repro.testbed import run_traced_attach_5g

K = bytes(range(16))


def build_baseline_5g(provision=True):
    sim = Simulator()
    topo = Topology5G.build(sim, "local")
    home_key = pooled_keypair(830)
    udm = Udm(topo.udm_host, home_network_key=home_key)
    Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
    Smf(topo.smf_host)
    amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
    Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
    supi = make_supi(9)
    if provision:
        udm.provision(supi, K)
    ue = Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(k=K),
              home_key.public_key, serving_network=amf.serving_network)
    return sim, amf, ue


def build_cellbricks_5g(enroll=True):
    sim = Simulator()
    topo = Topology5G.build(sim, "local")
    ca = CertificateAuthority(key=pooled_keypair(831))
    brokerd = Brokerd(topo.broker_host, id_b="b5gc",
                      ca_public_key=ca.public_key, key=pooled_keypair(832))
    telco_key = pooled_keypair(833)
    cert = ca.issue("t5gc", "btelco", telco_key.public_key)
    Smf(topo.smf_host)
    amf = CellBricksAmf(topo.amf_host, broker_ip=BROKER_ADDRESS,
                        smf_ip=SMF_ADDRESS, id_t="t5gc", key=telco_key,
                        certificate=cert, ca_public_key=ca.public_key)
    amf.trust_broker("b5gc", brokerd.public_key)
    Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
    ue_key = pooled_keypair(834)
    if enroll:
        brokerd.enroll_subscriber("dave", ue_key.public_key)
    credentials = UeSapCredentials(id_u="dave", id_b="b5gc", ue_key=ue_key,
                                   broker_public_key=brokerd.public_key)
    ue = CellBricksUe5G(topo.ue_host, GNB_ADDRESS, credentials,
                        target_id_t="t5gc")
    return sim, brokerd, amf, ue


def smoke_schedule():
    """The seeded CI fault script (same shape as the LTE smoke)."""
    schedule = ChaosSchedule()
    schedule.add(outage(2.0, 2.0, target="*-broker"))
    schedule.add(brownout(8.0, 2.0))
    return schedule


class TestFaultFree5G:
    """A clean network must need none of the reliability machinery."""

    @pytest.mark.parametrize("arch", ["BL", "CB"])
    def test_zero_retransmissions_and_exact_leg_sum(self, arch):
        result, obs, harness = run_traced_attach_5g(
            arch=arch, placement="us-west-1", trials=10)
        assert len(result.samples) == 10
        assert harness.reliable_retransmissions() == 0
        breakdowns = attach_leg_breakdown(obs.tracer.spans())
        assert len(breakdowns) == 10
        # The four traced legs decompose the end-to-end latency exactly.
        for legs in breakdowns:
            assert sum(legs[key] for key in LEG_NAMES) == \
                pytest.approx(legs["total_ms"], abs=1e-9)

    def test_fault_free_churn_leaves_no_residue(self):
        report = run_chaos(attaches=1000, revoke_every=0, seed=3,
                           base_loss=0.0, think_time=0.01, rat="5g")
        assert report.success_rate == 1.0
        assert report.retransmissions == 0
        for stats in report.site_stats.values():
            assert stats["contexts"] == 0
            assert stats["by_correlation"] == 0
            assert stats["pending_sap"] == 0
            assert stats["sessions_active"] == 0


class TestChaos5G:
    def test_smoke_meets_5g_acceptance_bars(self):
        report = run_chaos(attaches=150, schedule=smoke_schedule(),
                           revoke_every=10, seed=7, base_loss=0.05,
                           rat="5g")
        assert report.rat == "5g"
        assert report.success_rate >= 0.99
        assert report.unauthorized_session_seconds == 0.0
        # The faults actually bit: the run needed the reliable machinery.
        assert report.retransmissions > 0
        assert report.revocations > 0
        for stats in report.site_stats.values():
            assert stats["contexts"] == 0
            assert stats["by_correlation"] == 0
            assert stats["pending_sap"] == 0
            assert stats["sessions_active"] == 0

    def test_revocation_under_loss_converges_to_zero_unauthorized(self):
        report = run_chaos(attaches=60, revoke_every=5, seed=11,
                           base_loss=0.15, rat="5g")
        assert report.revocations > 0
        assert report.unauthorized_session_seconds == 0.0
        stats = report.broker_stats
        assert stats["revocation_batches_outstanding"] == 0
        # Per-site revocation acks were produced and signed correctly.
        acked = sum(site["revocation_acks_sent"]
                    for site in report.site_stats.values())
        assert acked >= stats["revocation_batches_acked"]

    def test_broker_blackhole_abandons_cleanly(self):
        """100% broker loss: every SAP attach gives up, is counted, and
        leaves no ``_pending_sap`` / context residue behind."""
        def blackhole(network):
            for name, link in network.links.items():
                if name.endswith("-broker"):
                    link.a_to_b.loss_rate = 1.0
                    link.b_to_a.loss_rate = 1.0

        report = run_chaos(attaches=3, seed=5, rat="5g",
                           on_network_built=blackhole)
        assert report.successes == 0
        assert report.failures == 3
        timeouts = sum(site["broker_timeouts"]
                       for site in report.site_stats.values())
        give_ups = sum(site["requests_failed"]
                       for site in report.site_stats.values())
        # Either the AMF's broker leg gave up (counted as a broker
        # timeout) or the UE abandoned first and the AMF GC'd the
        # context; both paths must drain the pending-SAP table.
        assert timeouts == give_ups
        assert timeouts > 0
        for stats in report.site_stats.values():
            assert stats["pending_sap"] == 0
            assert stats["contexts"] == 0
            assert stats["by_correlation"] == 0


class TestUe5GDuplicateChallenge:
    def test_duplicate_challenge_is_idempotent(self):
        """A late/duplicate SapRegistrationChallenge must not re-run
        ``sap.process_response`` and fail a REGISTERED UE."""
        sim, brokerd, amf, ue = build_cellbricks_5g()
        results = []
        ue.on_registration_done = results.append
        captured = []
        original = ue._handlers[nas5g.SapRegistrationChallenge]

        def capture(src_ip, message):
            captured.append((src_ip, message))
            original(src_ip, message)

        ue._handlers[nas5g.SapRegistrationChallenge] = capture
        ue.register()
        sim.run(until=2.0)
        assert results and results[0].success
        assert ue.state == "REGISTERED"
        assert captured
        security_before = ue.security

        # Replay the challenge as a late duplicate delivery.
        original(*captured[0])
        sim.run(until=3.0)
        assert ue.state == "REGISTERED"
        assert ue.security is security_before
        assert len(results) == 1

    def test_reregister_clears_stale_session_state(self):
        sim, brokerd, amf, ue = build_cellbricks_5g()
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=2.0)
        assert results[0].success
        first_session = ue.session_id
        ue.detach_and_forget()
        sim.run(until=3.0)
        assert ue.security is None
        ue.register()
        sim.run(until=5.0)
        assert len(results) == 2 and results[1].success
        assert ue.session_id is not None
        assert ue.session_id != first_session


class TestAmfLeakRegressions:
    def test_baseline_reject_cleans_both_maps(self):
        sim, amf, ue = build_baseline_5g(provision=False)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=5.0)
        assert results and not results[0].success
        assert amf.contexts == {}
        assert amf._by_correlation == {}
        assert amf.registrations_rejected == 1

    def test_baseline_complete_releases_correlation(self):
        sim, amf, ue = build_baseline_5g()
        results, sessions = [], []
        ue.on_registration_done = results.append
        ue.on_session_done = sessions.append
        ue.register()
        sim.run(until=2.0)
        assert results and results[0].success
        # REGISTERED context stays, but the SBI correlation is released.
        assert len(amf.contexts) == 1
        assert amf._by_correlation == {}
        ue.establish_session()
        sim.run(until=3.0)
        assert sessions and sessions[0].success
        assert amf._by_correlation == {}

    def test_cellbricks_broker_denial_cleans_maps(self):
        sim, brokerd, amf, ue = build_cellbricks_5g(enroll=False)
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=5.0)
        assert results and not results[0].success
        assert amf.contexts == {}
        assert amf._by_correlation == {}
        assert amf._pending_sap == {}
        assert amf.registrations_rejected == 1
        assert dict(amf.rejection_causes)
