"""Tests for the geometry-driven emulation adapter."""

import random

import pytest

from repro.emulation import (
    ARCH_CELLBRICKS,
    ARCH_MNO,
    EmulationConfig,
    GeoPairedEmulation,
)
from repro.net import Simulator
from repro.ran import corridor_deployment, simulate_drive, straight_drive


def make_drive(seed=31):
    deployment = corridor_deployment(4000, 700,
                                     operators=("a", "b"),
                                     rng=random.Random(seed))
    return simulate_drive(deployment, straight_drive(4000, 15.0),
                          seed=seed)


class TestGeoPairedEmulation:
    def test_handover_events_come_from_drive_log(self):
        drive = make_drive()
        sim = Simulator()
        emulation = GeoPairedEmulation(sim, drive, seed=2)
        assert len(emulation.handover_events) == drive.handover_count
        drive_times = [h.at for h in drive.handovers]
        event_times = [e.at for e in emulation.handover_events]
        assert event_times == drive_times

    def test_duration_clamped_to_drive(self):
        drive = make_drive()
        sim = Simulator()
        config = EmulationConfig(duration=10_000, handovers=False)
        emulation = GeoPairedEmulation(sim, drive, config=config)
        assert emulation.config.duration == pytest.approx(drive.duration)

    def test_capacity_trace_drives_both_paths(self):
        drive = make_drive()
        sim = Simulator()
        config = EmulationConfig(duration=30, handovers=False)
        emulation = GeoPairedEmulation(sim, drive, config=config,
                                       capacity_scale=0.5)
        emulation.start()
        sim.run(until=20.0)
        expected = max(drive.capacity_trace()[19] * 0.5, 1.5e6)
        assert emulation.mno.radio_link.a_to_b.bandwidth_bps == \
            pytest.approx(expected)
        assert emulation.cb.radio_link.a_to_b.bandwidth_bps == \
            pytest.approx(expected)

    def test_iperf_over_geometry(self):
        drive = make_drive()
        sim = Simulator()
        config = EmulationConfig(duration=40, handovers=False, seed=5)
        emulation = GeoPairedEmulation(sim, drive, config=config,
                                       capacity_scale=0.3)
        stats = emulation.run_iperf()
        mno = stats[ARCH_MNO].average_mbps(40)
        cb = stats[ARCH_CELLBRICKS].average_mbps(40)
        assert mno > 1.0
        assert cb > 1.0
        assert abs(mno - cb) / mno < 0.35
