"""Unit tests for Table 1 aggregation and the key-pool helper."""

import pytest

from repro.crypto.keypool import pooled_keypair
from repro.emulation import DAY, NIGHT, render_table1
from repro.emulation.driver import CellResult, Table1Result


def make_cell(route, tod, mno, cb, metric="iperf_mbps"):
    cell = CellResult(route=route, time_of_day=tod, mttho_s=50.0)
    getattr(cell, metric).update({"mno": mno, "cellbricks": cb})
    return cell


class TestOverallSlowdown:
    def test_higher_is_better_direction(self):
        result = Table1Result(cells=[make_cell("downtown", DAY, 10.0, 9.7)])
        assert result.overall_slowdown("iperf_mbps", DAY) == \
            pytest.approx(3.0)

    def test_lower_is_better_direction(self):
        result = Table1Result(
            cells=[make_cell("downtown", DAY, 5.0, 5.2,
                             metric="web_load_s")])
        # CB takes 5.2 s vs 5.0 s: 4% slower.
        assert result.overall_slowdown("web_load_s", DAY,
                                       lower_is_better=True) == \
            pytest.approx(4.0)

    def test_negative_slowdown_when_cb_wins(self):
        result = Table1Result(
            cells=[make_cell("highway", NIGHT, 11.38, 12.42)])
        slowdown = result.overall_slowdown("iperf_mbps", NIGHT)
        assert slowdown < 0  # the paper's highway-night row, reproduced

    def test_averages_across_routes(self):
        result = Table1Result(cells=[
            make_cell("suburb", DAY, 10.0, 9.0),     # 10% slowdown
            make_cell("downtown", DAY, 10.0, 10.0),  # 0%
        ])
        assert result.overall_slowdown("iperf_mbps", DAY) == \
            pytest.approx(5.0)

    def test_times_of_day_kept_separate(self):
        result = Table1Result(cells=[
            make_cell("suburb", DAY, 10.0, 9.0),
            make_cell("suburb", NIGHT, 10.0, 10.0),
        ])
        assert result.overall_slowdown("iperf_mbps", NIGHT) == 0.0

    def test_missing_cells_skipped(self):
        result = Table1Result(cells=[
            CellResult(route="suburb", time_of_day=DAY)])
        assert result.overall_slowdown("iperf_mbps", DAY) == 0.0


class TestRenderTable1:
    def test_renders_all_columns(self):
        cell = make_cell("downtown", DAY, 1.14, 1.11)
        cell.ping_p50_ms = {"mno": 48.0, "cellbricks": 48.1}
        cell.voip_mos = {"mno": 4.30, "cellbricks": 4.25}
        cell.video_level = {"mno": 2.03, "cellbricks": 1.97}
        cell.web_load_s = {"mno": 5.12, "cellbricks": 5.22}
        text = render_table1(Table1Result(cells=[cell]))
        assert "downtown" in text
        assert "CellBricks" in text
        assert "Overall Perf. Slowdown" in text
        assert "1.14" in text and "1.11" in text

    def test_renders_partial_results(self):
        text = render_table1(Table1Result(
            cells=[CellResult(route="suburb", time_of_day=NIGHT)]))
        assert "suburb" in text


class TestKeyPool:
    def test_same_slot_same_key(self):
        assert pooled_keypair(12345) is pooled_keypair(12345)

    def test_different_slots_differ(self):
        assert pooled_keypair(12346).n != pooled_keypair(12347).n

    def test_pool_keys_functional(self):
        key = pooled_keypair(12348)
        signature = key.sign(b"message")
        assert key.public_key.verify(b"message", signature)
