"""Tests for the time-of-day rate-limit policy (Appendix A)."""

import pytest

from repro.apps import IperfClient, IperfServer, KIND_TCP
from repro.emulation.policy import PolicyScheduler, TimeOfDayPolicy
from repro.net import CellularPath, Simulator


class TestPolicyLogic:
    def test_night_window(self):
        policy = TimeOfDayPolicy(night_starts_hour=0.5, night_ends_hour=6.0)
        assert not policy.is_night(23.9)
        assert policy.is_night(0.5)
        assert policy.is_night(3.0)
        assert not policy.is_night(6.0)
        assert not policy.is_night(12.0)

    def test_wrapping_window(self):
        policy = TimeOfDayPolicy(night_starts_hour=22.0, night_ends_hour=5.0)
        assert policy.is_night(23.0)
        assert policy.is_night(2.0)
        assert not policy.is_night(12.0)

    def test_rates(self):
        policy = TimeOfDayPolicy(day_rate_bps=1e6, night_rate_bps=None)
        assert policy.rate_at(12.0) == 1e6
        assert policy.rate_at(2.0) is None

    def test_next_switch_hour(self):
        policy = TimeOfDayPolicy(night_starts_hour=0.5, night_ends_hour=6.0)
        assert policy.next_switch_hour(0.0) == pytest.approx(0.5)
        assert policy.next_switch_hour(2.0) == pytest.approx(4.0)
        assert policy.next_switch_hour(23.0) == pytest.approx(1.5)


class TestScheduler:
    def test_mode_flip_mid_run(self):
        """A drive that starts at 00:20 crosses the 00:30 switch: the
        measured throughput is bimodal within one run (Fig 10's pattern,
        observed live instead of as two separate drives)."""
        sim = Simulator()
        path = CellularPath(sim, shaper_rate=1.2e6)
        path.assign_ue_address()
        policy = TimeOfDayPolicy(day_rate_bps=1.2e6, night_rate_bps=30e6)
        # 00:20, with time compressed 60x: the switch lands at t=10 s.
        scheduler = PolicyScheduler(sim, policy, [path],
                                    clock_offset_hours=20 / 60,
                                    time_scale=60.0)
        IperfServer(KIND_TCP, path.server)
        client = IperfClient(KIND_TCP, path.ue, path.server.address)
        scheduler.start(duration=30.0)
        client.start()
        sim.run(until=30.0)

        day_mbps = client.stats.window_mbps(2.0, 9.0)
        night_mbps = client.stats.window_mbps(15.0, 29.0)
        assert night_mbps > 5 * day_mbps
        assert len(scheduler.switches) == 2  # initial apply + the flip

    def test_no_switch_when_run_too_short(self):
        sim = Simulator()
        path = CellularPath(sim, shaper_rate=1.2e6)
        path.assign_ue_address()
        policy = TimeOfDayPolicy()
        scheduler = PolicyScheduler(sim, policy, [path],
                                    clock_offset_hours=12.0)
        scheduler.start(duration=60.0)   # noon + 60 s: no boundary
        sim.run(until=60.0)
        assert len(scheduler.switches) == 1

    def test_hour_now_wraps(self):
        sim = Simulator()
        policy = TimeOfDayPolicy()
        scheduler = PolicyScheduler(sim, policy, [],
                                    clock_offset_hours=23.0,
                                    time_scale=3600.0)  # 1 s = 1 h
        sim.run(until=2.0)
        assert scheduler.hour_now() == pytest.approx(1.0)

class TestSingleDriveModeFlip:
    def test_figure10_single_drive_is_bimodal(self):
        from repro.emulation import run_figure10_single_drive

        result = run_figure10_single_drive(duration=120.0, switch_at=60.0,
                                           seed=4)
        # Pre-switch policed (~1.2 Mbps); post-switch radio-limited.
        assert result.day_avg < 2.0
        assert result.night_avg > 5 * result.day_avg
