"""Tests for the T-to-B / B-to-U settlement engine."""

import pytest

from repro.core.billing import (
    BillingVerifier,
    REPORTER_BTELCO,
    REPORTER_UE,
    TrafficReport,
    make_upload,
)
from repro.core.qos import QosInfo
from repro.core.sap import SapGrant
from repro.core.settlement import (
    SettlementEngine,
    SettlementError,
    make_claim,
)
from repro.crypto.keypool import pooled_keypair

BROKER = pooled_keypair(840)
UE = pooled_keypair(841)
TELCO = pooled_keypair(842)

GB = 10**9


def build(session_id="s-1", id_t="t1", dl=GB // 2, ul=GB // 10,
          telco_dl=None):
    """A billing verifier with one cross-checked session."""
    billing = BillingVerifier(broker_key=BROKER)
    grant = SapGrant(id_u="alice", id_u_opaque="anon", id_t=id_t,
                     session_id=session_id, ss=b"s" * 32,
                     qos_info=QosInfo(), granted_at=0.0, expires_at=1e9)
    billing.open_session(grant, ue_public_key=UE.public_key,
                         btelco_public_key=TELCO.public_key)
    ue_report = TrafficReport(session_id=session_id, seq=0,
                              interval_start=0, interval_end=30,
                              ul_bytes=ul, dl_bytes=dl)
    t_report = TrafficReport(session_id=session_id, seq=0,
                             interval_start=0, interval_end=30,
                             ul_bytes=ul, dl_bytes=telco_dl or dl)
    billing.ingest(make_upload(ue_report, REPORTER_UE, UE,
                               BROKER.public_key), now=30.0)
    billing.ingest(make_upload(t_report, REPORTER_BTELCO, TELCO,
                               BROKER.public_key), now=30.0)
    engine = SettlementEngine(billing)
    engine.register_btelco(id_t, TELCO.public_key)
    return billing, engine


class TestHonestSettlement:
    def test_claim_paid_in_full(self):
        billing, engine = build()
        claim = make_claim("s-1", "t1", GB // 2, GB // 10, TELCO)
        payment = engine.process_claim(claim)
        assert payment.paid == pytest.approx(claim.amount)
        assert not payment.disputed
        assert engine.btelco_balance("t1") == pytest.approx(claim.amount)

    def test_subscriber_billed_at_retail(self):
        billing, engine = build(dl=GB, ul=0)
        claim = make_claim("s-1", "t1", GB, 0, TELCO)
        engine.process_claim(claim)
        assert engine.subscriber_statement("alice") == \
            pytest.approx(engine.retail_per_gb)

    def test_broker_margin_positive(self):
        billing, engine = build(dl=GB, ul=0)
        engine.process_claim(make_claim("s-1", "t1", GB, 0, TELCO))
        assert engine.broker_margin == pytest.approx(
            engine.retail_per_gb - engine.wholesale_per_gb)


class TestDishonestSettlement:
    def test_inflated_claim_paid_only_verified(self):
        # The bTelco reported 2x to the broker AND claims 2x.
        billing, engine = build(dl=GB, telco_dl=2 * GB)
        claim = make_claim("s-1", "t1", 2 * GB, GB // 10, TELCO)
        payment = engine.process_claim(claim)
        assert payment.disputed
        assert payment.paid < payment.claimed
        # Paid from the UE-verified ledger, not the claim.
        ledger = billing.sessions["s-1"]
        verified = (ledger.billable_dl_bytes + ledger.billable_ul_bytes)
        assert payment.paid == pytest.approx(
            verified / 1e9 * engine.wholesale_per_gb)
        assert engine.disputes == 1

    def test_forged_signature_rejected(self):
        billing, engine = build()
        mallory = pooled_keypair(843)
        claim = make_claim("s-1", "t1", GB, 0, mallory)
        with pytest.raises(SettlementError, match="signature"):
            engine.process_claim(claim)

    def test_claim_for_other_btelcos_session_rejected(self):
        billing, engine = build(id_t="t1")
        other = pooled_keypair(844)
        engine.register_btelco("t2", other.public_key)
        claim = make_claim("s-1", "t2", GB, 0, other)
        with pytest.raises(SettlementError, match="did not serve"):
            engine.process_claim(claim)

    def test_double_settlement_rejected(self):
        billing, engine = build()
        claim = make_claim("s-1", "t1", GB // 2, GB // 10, TELCO)
        engine.process_claim(claim)
        with pytest.raises(SettlementError, match="already settled"):
            engine.process_claim(claim)

    def test_unknown_btelco_rejected(self):
        billing, engine = build()
        stranger = pooled_keypair(845)
        claim = make_claim("s-1", "nobody", GB, 0, stranger)
        with pytest.raises(SettlementError, match="unknown bTelco"):
            engine.process_claim(claim)

    def test_unknown_session_rejected(self):
        billing, engine = build()
        claim = make_claim("s-404", "t1", GB, 0, TELCO)
        with pytest.raises(SettlementError, match="unknown session"):
            engine.process_claim(claim)
