"""Property-based tests: transport invariants under adverse conditions.

The central invariant the CellBricks mobility story depends on: the
connection-level byte stream is delivered *exactly once, in order,
completely* — whatever the loss pattern and however many addresses the
UE burns through.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    CellularPath,
    Host,
    Link,
    MptcpConnection,
    MptcpListener,
    Simulator,
    TcpConnection,
    TcpListener,
)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=60_000),
                   min_size=1, max_size=8),
    loss=st.floats(min_value=0.0, max_value=0.08),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_tcp_delivers_exact_bytes_under_loss(sizes, loss, seed):
    sim = Simulator()
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    Link(sim, "ab", a, b, bandwidth_bps=20e6, delay_s=0.01,
         loss_rate=loss, rng=random.Random(seed))
    received = [0]

    def accept(conn):
        conn.on_data = lambda n, m: received.__setitem__(0, received[0] + n)

    TcpListener(b, 80, accept)
    client = TcpConnection(a, "10.0.0.2", 80)

    def send_all():
        for size in sizes:
            client.send(size)

    client.on_established = send_all
    client.connect()
    sim.run(until=300.0)
    assert received[0] == sum(sizes)


@given(
    total=st.integers(min_value=100_000, max_value=3_000_000),
    handover_times=st.lists(
        st.floats(min_value=1.0, max_value=20.0),
        min_size=0, max_size=3, unique=True),
    loss=st.floats(min_value=0.0, max_value=0.02),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_mptcp_delivers_exact_bytes_across_handovers(total, handover_times,
                                                     loss, seed):
    """No duplication, no loss, no reordering at the connection level —
    across arbitrary IP changes."""
    sim = Simulator()
    path = CellularPath(sim, shaper_rate=None, radio_loss=loss, seed=seed)
    path.assign_ue_address()
    received = [0]

    def on_connection(conn):
        conn.send(total)

    MptcpListener(path.server, 443, on_connection)
    client = MptcpConnection(path.ue, path.server.address, 443,
                             address_wait=0.3)
    client.on_data = lambda n: received.__setitem__(0, received[0] + n)
    client.connect()

    # Space the handovers at least 1.5 s apart so attaches can complete.
    spaced = []
    for at in sorted(handover_times):
        if not spaced or at - spaced[-1] >= 1.5:
            spaced.append(at)
    for index, at in enumerate(spaced):
        def handover(prefix=f"10.{140 + index}.0"):
            path.detach(interruption_s=0.05)
            sim.schedule(0.1, path.attach, prefix)
        sim.schedule_at(at, handover)

    sim.run(until=600.0)
    assert received[0] == total
    assert client.bytes_delivered == total


@given(
    chunks=st.lists(st.integers(min_value=1, max_value=5000),
                    min_size=1, max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_bidirectional_echo_conservation(chunks):
    """Whatever the client sends, the echo server returns byte-for-byte."""
    sim = Simulator()
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    Link(sim, "ab", a, b, bandwidth_bps=10e6, delay_s=0.005)

    def accept(conn):
        conn.on_data = lambda n, m: conn.send(n)  # echo

    TcpListener(b, 7, accept)
    echoed = [0]
    client = TcpConnection(a, "10.0.0.2", 7)
    client.on_data = lambda n, m: echoed.__setitem__(0, echoed[0] + n)

    def send_all():
        for size in chunks:
            client.send(size)

    client.on_established = send_all
    client.connect()
    sim.run(until=60.0)
    assert echoed[0] == sum(chunks)
