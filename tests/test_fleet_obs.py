"""Fleet observatory tests: KPI collection + data-path span tracing.

Covers the observability PR's acceptance bars:

* the traced mobility drive's migration legs (re-auth, transport
  re-establish, drain) sum *exactly* to the end-to-end stall on both
  RATs, and two seeded runs export byte-identical traces;
* the chrome exporter's pid/tid assignment is stable and collision-free
  across runs;
* the KPI collector is passive (a collected megaload replays the exact
  collector-free workload digest) and deterministic (two seeded runs
  emit byte-identical KPI JSON);
* windowed counter deltas, rates, and gauges behave per spec.
"""

import json

import pytest

from repro.net import Simulator
from repro.obs import MIGRATION_LEG_NAMES, MetricsRegistry
from repro.obs.export import (
    chrome_thread_ids,
    migration_leg_breakdown,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.obs.fleet import (
    FleetKpiStore,
    KpiCollector,
    metrics_registry_probe,
)
from repro.testbed.traced_drive import run_traced_drive


# -- KPI collector ------------------------------------------------------------

class TestKpiCollector:
    def _collector(self, interval=1.0, horizon=None):
        sim = Simulator()
        store = FleetKpiStore("t")
        collector = KpiCollector(sim, store, interval=interval,
                                 horizon=horizon)
        return sim, store, collector

    def test_counter_probe_windows_deltas_and_rates(self):
        sim, store, collector = self._collector(interval=2.0)
        state = {"served": 0}
        collector.add_counter_probe("b", lambda: dict(state))
        collector.start()
        sim.schedule(0.5, lambda: state.__setitem__("served", 3))
        sim.schedule(2.5, lambda: state.__setitem__("served", 10))
        sim.schedule(4.5, lambda: None)   # keep the sim alive to t=4.5
        sim.run(until=5.0)
        assert [row["b.served"] for row in store.rows] == [3, 7]
        assert [row["b.served_per_s"] for row in store.rows] == [1.5, 3.5]

    def test_gauge_probe_samples_levels(self):
        sim, store, collector = self._collector()
        level = {"v": 4}
        collector.add_gauge_probe("g", lambda: dict(depth=level["v"]))
        collector.start()
        sim.schedule(1.5, lambda: level.__setitem__("v", 9))
        sim.schedule(2.5, lambda: None)
        sim.run(until=2.7)
        assert [row["g.depth"] for row in store.rows] == [4, 9]

    def test_stop_flushes_partial_window(self):
        sim, store, collector = self._collector(interval=10.0)
        state = {"n": 0}
        collector.add_counter_probe("c", lambda: dict(state))
        collector.start()
        sim.schedule(1.0, lambda: state.__setitem__("n", 5))
        sim.run(until=2.0)
        assert store.rows == []
        collector.stop()
        assert len(store.rows) == 1
        assert store.rows[0]["c.n"] == 5
        assert store.rows[0]["window_s"] == 2.0

    def test_collector_does_not_keep_sim_alive(self):
        """Daemon-like ticking: once the workload drains, an unbounded
        run() terminates even though the collector was still armed."""
        sim, store, collector = self._collector(interval=0.5)
        collector.add_gauge_probe("g", lambda: {"x": 1})
        collector.start()
        sim.schedule(1.2, lambda: None)
        sim.run()   # no `until`: would hang if ticks re-armed forever
        assert sim.now < 2.5
        assert len(store.rows) >= 2

    def test_horizon_bounds_sampling(self):
        sim, store, collector = self._collector(interval=1.0, horizon=3.0)
        collector.add_gauge_probe("g", lambda: {"x": 1})
        collector.start()
        sim.schedule(100.0, lambda: None)   # long-tail cleanup event
        sim.run()
        assert all(row["t"] <= 3.0 for row in store.rows)

    def test_metrics_registry_probe_flattens_histograms(self):
        registry = MetricsRegistry(node="n")
        registry.counter("hits").inc(4)
        registry.histogram("lat").observe(1.0)
        probe = metrics_registry_probe(registry)
        out = probe()
        assert out["hits"] == 4
        assert out["lat.count"] == 1


class TestFleetKpiStore:
    def _store(self):
        store = FleetKpiStore("s")
        store.record({"t": 1.0, "window_s": 1.0, "a.x": 2, "a.y": 5.0})
        store.record({"t": 2.0, "window_s": 1.0, "a.x": 4})
        return store

    def test_keys_series_summary(self):
        store = self._store()
        assert store.keys() == ["a.x", "a.y"]
        assert store.series("a.x") == [2, 4]
        assert store.series("a.y") == [5.0, 0]   # missing -> 0
        assert store.summary()["a.x"] == {"min": 2, "max": 4, "mean": 3.0}

    def test_json_roundtrip_sorted_and_newline_terminated(self):
        payload = self._store().to_json()
        assert payload.endswith("\n")
        decoded = json.loads(payload)
        assert decoded["windows"] == 2
        assert list(decoded["summary"]) == sorted(decoded["summary"])

    def test_dashboard_and_html_render(self):
        store = self._store()
        dash = store.dashboard()
        assert "a.x" in dash and "max=4.00" in dash
        html = store.to_html()
        assert "<svg" in html and "a.y" in html


# -- passive collection over megaload ----------------------------------------

MEGA = dict(ues=1500, sites=16, duration=15.0, seed=5)


class TestMegaloadCollection:
    def test_collected_digest_equals_bare_digest(self):
        """The collector is read-only: attaching it must not perturb the
        deterministic workload outcome at all."""
        from repro.testbed.megaload import run_cell

        bare = run_cell(**MEGA)
        store = FleetKpiStore("m")
        collected = run_cell(kpi_store=store, **MEGA)
        assert collected["digest"] == bare["digest"]
        assert len(store.rows) > 0
        assert any(row.get("workload.attach_ok", 0) > 0
                   for row in store.rows)

    def test_kpi_json_byte_identical_across_runs(self):
        from repro.testbed.megaload import run_cell

        stores = []
        for _ in range(2):
            store = FleetKpiStore("m")
            run_cell(kpi_store=store, **MEGA)
            stores.append(store)
        assert stores[0].to_json() == stores[1].to_json()


# -- traced mobility drive ----------------------------------------------------

class TestTracedDrive:
    @pytest.fixture(scope="class")
    def lte(self):
        return run_traced_drive("lte")

    @pytest.fixture(scope="class")
    def fiveg(self):
        return run_traced_drive("5g")

    def test_lte_legs_sum_exactly(self, lte):
        assert lte["pass"], lte["gates"]
        legs = lte["legs"]
        assert legs["transport"] == "mptcp.subflow_establish"
        total = sum(legs[name] for name in MIGRATION_LEG_NAMES)
        assert total == pytest.approx(legs["total_ms"], abs=1e-9)
        assert legs["total_ms"] == pytest.approx(lte["stall_ms"], abs=1e-6)

    def test_5g_legs_sum_exactly(self, fiveg):
        assert fiveg["pass"], fiveg["gates"]
        legs = fiveg["legs"]
        assert legs["transport"] == "quic.path_validation"
        total = sum(legs[name] for name in MIGRATION_LEG_NAMES)
        assert total == pytest.approx(legs["total_ms"], abs=1e-9)

    def test_traffic_resumes_after_switch(self, lte, fiveg):
        for report in (lte, fiveg):
            assert report["deliveries_before_switch"] > 0
            assert report["deliveries_after_switch"] > 0


class TestTraceExportRoundtrip:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.obs import Obs

        out = []
        for _ in range(2):
            obs = Obs(tracing=True)
            run_traced_drive("lte", obs=obs)
            out.append(obs.tracer.spans())
        return out

    def test_jsonl_schema_and_byte_identity(self, runs):
        payloads = [spans_to_jsonl(spans) for spans in runs]
        assert payloads[0] == payloads[1]
        for line in payloads[0].splitlines():
            record = json.loads(line)
            for key in ("trace_id", "span_id", "parent_id", "name",
                        "node", "start", "kind"):
                assert key in record

    def test_chrome_tids_stable_and_collision_free(self, runs):
        tids = [chrome_thread_ids(spans) for spans in runs]
        assert tids[0] == tids[1]
        values = list(tids[0].values())
        assert len(values) == len(set(values))   # one tid per node
        chromes = [spans_to_chrome(spans) for spans in runs]
        assert chromes[0] == chromes[1]
        span_events = [event for event in chromes[0]["traceEvents"]
                       if event["ph"] != "M"]
        assert all(event["pid"] == 1 for event in span_events)
        assert {event["tid"] for event in span_events} <= set(values)

    def test_migration_breakdown_from_exported_spans(self, runs):
        breakdowns = [migration_leg_breakdown(spans) for spans in runs]
        assert breakdowns[0] == breakdowns[1]
        assert len(breakdowns[0]) == 1


# -- broker-ha trace instants -------------------------------------------------

class TestBrokerHaInstants:
    def test_failover_instants_recorded(self):
        """A broker-ha drill under trace records the frontend's failover
        story: detection, promotion, and degraded reroutes land as
        instants (the degraded path's instants nest in attach traces)."""
        from repro.obs import Obs
        from repro.testbed.broker_ha import run_cell

        obs = Obs(tracing=True)
        cell = run_cell("lte", attaches=40, obs=obs)
        assert cell["failovers_total"] >= 2
        names = {span.name for span in obs.tracer.spans()}
        assert "broker.failover" in names
        assert "broker.promoted" in names

    def test_shard_stats_surface_replication_gauges(self):
        from repro.testbed.broker_ha import run_cell

        store = FleetKpiStore("ha")
        run_cell("lte", attaches=40, kpi_store=store)
        keys = set(store.keys())
        assert any(key.endswith("repl_lag_s") for key in keys)
        assert any(key.endswith("repl_backlog_ops") for key in keys)
        assert any(key.endswith("health") for key in keys)
