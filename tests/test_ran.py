"""Tests for the geometric RAN model."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran import (
    Cell,
    Deployment,
    Point,
    Trajectory,
    Waypoint,
    capacity_bps,
    corridor_deployment,
    path_loss_db,
    rsrp_dbm,
    simulate_drive,
    straight_drive,
)
from repro.ran.propagation import ShadowingField


class TestGeometry:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_towards(self):
        mid = Point(0, 0).towards(Point(10, 0), 0.5)
        assert mid == Point(5, 0)

    def test_trajectory_interpolates(self):
        traj = straight_drive(1000, speed_mps=10.0)
        assert traj.position_at(0).x == 0
        assert traj.position_at(50).x == pytest.approx(500)
        assert traj.total_duration == pytest.approx(100)

    def test_trajectory_clamps_at_end(self):
        traj = straight_drive(100, 10.0)
        assert traj.position_at(1e6).x == 100

    def test_multi_leg_speeds(self):
        traj = Trajectory(Point(0, 0), [Waypoint(Point(100, 0), 10.0),
                                        Waypoint(Point(100, 100), 20.0)])
        assert traj.speed_at(5) == 10.0
        assert traj.speed_at(12) == 20.0
        assert traj.total_duration == pytest.approx(10 + 5)

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(Point(0, 0), [])

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(Point(0, 0), [Waypoint(Point(1, 0), 0.0)])


class TestPropagation:
    def test_path_loss_grows_with_distance(self):
        assert path_loss_db(1000) > path_loss_db(100) > path_loss_db(10)

    def test_path_loss_clamps_below_1m(self):
        assert path_loss_db(0.001) == path_loss_db(1.0)

    def test_rsrp_declines_with_distance(self):
        near = rsrp_dbm(46.0, 100)
        far = rsrp_dbm(46.0, 2000)
        assert near > far

    def test_capacity_monotone_in_rsrp(self):
        strong = capacity_bps(-70)
        weak = capacity_bps(-110)
        assert strong > weak > 0

    def test_capacity_caps_at_max_efficiency(self):
        assert capacity_bps(-30) == capacity_bps(-40)

    def test_shadowing_correlated_over_short_moves(self):
        field = ShadowingField(seed=1)
        a = field.sample(Point(0, 0))
        b = field.sample(Point(1, 0))     # 1 m: ~no decorrelation
        assert abs(a - b) < 3.0

    def test_shadowing_decorrelates_over_long_moves(self):
        samples = []
        for seed in range(40):
            field = ShadowingField(seed=seed)
            a = field.sample(Point(0, 0))
            b = field.sample(Point(5000, 0))  # >> decorrelation distance
            samples.append((a, b))
        corr_num = sum(a * b for a, b in samples)
        corr_den = math.sqrt(sum(a * a for a, _ in samples)
                             * sum(b * b for _, b in samples))
        assert abs(corr_num / corr_den) < 0.5


class TestDeployment:
    def test_corridor_covers_length(self):
        deployment = corridor_deployment(5000, 500)
        assert len(deployment.cells) >= 9
        xs = sorted(cell.position.x for cell in deployment.cells)
        assert xs[0] < 1000 and xs[-1] > 4000

    def test_measurements_cover_all_cells(self):
        deployment = corridor_deployment(2000, 500)
        report = deployment.measure(Point(1000, 0))
        assert set(report) == {c.pci for c in deployment.cells}

    def test_neighbor_list_is_closest_cells(self):
        deployment = corridor_deployment(10000, 500,
                                         rng=random.Random(1))
        anchor = deployment.cells[5]
        neighbors = deployment.neighbors_of(anchor.pci, count=4)
        assert len(neighbors) == 4
        distances = [n.position.distance_to(anchor.position)
                     for n in neighbors]
        others = [c.position.distance_to(anchor.position)
                  for c in deployment.cells if c.pci != anchor.pci]
        assert max(distances) <= sorted(others)[3] + 1e-9

    def test_operators_assigned(self):
        deployment = corridor_deployment(5000, 500,
                                         operators=("x", "y"),
                                         rng=random.Random(2))
        assert {c.operator for c in deployment.cells} <= {"x", "y"}


class TestDriveSimulation:
    def test_drive_produces_handovers(self):
        deployment = corridor_deployment(10000, 800,
                                         rng=random.Random(3))
        log = simulate_drive(deployment, straight_drive(10000, 15.0),
                             seed=4)
        assert log.handover_count >= 5
        assert log.mttho > 0

    def test_faster_drive_shorter_mttho(self):
        deployment = corridor_deployment(20000, 1000,
                                         rng=random.Random(5))
        slow = simulate_drive(deployment, straight_drive(20000, 8.0),
                              seed=6)
        fast = simulate_drive(deployment, straight_drive(20000, 30.0),
                              seed=6)
        assert fast.mttho < slow.mttho

    def test_denser_cells_more_handovers(self):
        dense = corridor_deployment(10000, 400, rng=random.Random(7))
        sparse = corridor_deployment(10000, 1600, rng=random.Random(7))
        drive = straight_drive(10000, 15.0)
        assert simulate_drive(dense, drive, seed=8).handover_count > \
            simulate_drive(sparse, drive, seed=8).handover_count

    def test_hysteresis_reduces_ping_pong(self):
        deployment = corridor_deployment(10000, 600,
                                         rng=random.Random(9))
        drive = straight_drive(10000, 15.0)
        aggressive = simulate_drive(deployment, drive, hysteresis_db=0.0,
                                    time_to_trigger_s=0.0, seed=10)
        damped = simulate_drive(deployment, drive, hysteresis_db=4.0,
                                time_to_trigger_s=0.64, seed=10)
        assert damped.handover_count < aggressive.handover_count

    def test_operator_switches_tracked(self):
        deployment = corridor_deployment(
            10000, 700, operators=("a", "b", "c"), rng=random.Random(11))
        log = simulate_drive(deployment, straight_drive(10000, 15.0),
                             seed=12)
        assert 0 < log.operator_switches <= log.handover_count

    def test_single_operator_never_switches_operators(self):
        deployment = corridor_deployment(10000, 700, operators=("solo",),
                                         rng=random.Random(13))
        log = simulate_drive(deployment, straight_drive(10000, 15.0),
                             seed=14)
        assert log.operator_switches == 0

    def test_capacity_trace_length(self):
        deployment = corridor_deployment(3000, 600, rng=random.Random(15))
        log = simulate_drive(deployment, straight_drive(3000, 15.0),
                             seed=16)
        trace = log.capacity_trace(interval=1.0)
        assert len(trace) == pytest.approx(log.duration, abs=2)
        assert all(c > 0 for c in trace)

    def test_neighbor_list_selection_still_functions(self):
        deployment = corridor_deployment(8000, 700, rng=random.Random(17))
        log = simulate_drive(deployment, straight_drive(8000, 15.0),
                             use_neighbor_list=True, seed=18)
        # With assisted selection the UE still progresses down the road.
        assert log.handover_count >= 4

    @given(speed=st.floats(min_value=8.0, max_value=40.0),
           isd=st.floats(min_value=300.0, max_value=1500.0))
    @settings(max_examples=8, deadline=None)
    def test_mttho_roughly_isd_over_speed(self, speed, isd):
        """The emergent MTTHO tracks geometry: about one handover per
        inter-site distance travelled."""
        length = min(15 * isd, speed * 500)  # cap the drive at ~500 s
        # Mild shadowing: geometry, not fading, should set the handover
        # rate for this property (deep shadowing adds extra handovers).
        deployment = corridor_deployment(length, isd,
                                         shadowing_sigma_db=2.0,
                                         rng=random.Random(19))
        log = simulate_drive(deployment, straight_drive(length, speed),
                             seed=20, sample_interval=0.25)
        if log.handover_count >= 5:
            expected = isd / speed
            assert 0.4 * expected < log.mttho < 2.5 * expected
