"""MPTCP edge cases: races around handovers, backlog, and subflow death."""

import pytest

from repro.net import (
    CellularPath,
    MptcpConnection,
    MptcpListener,
    Simulator,
)


def make_path(sim, **kwargs):
    path = CellularPath(sim, **kwargs)
    path.assign_ue_address()
    return path


class TestConnectTiming:
    def test_send_before_established_is_buffered(self):
        sim = Simulator()
        path = make_path(sim)
        got = [0]

        def on_conn(conn):
            conn.on_data = lambda n: got.__setitem__(0, got[0] + n)

        MptcpListener(path.server, 443, on_conn)
        client = MptcpConnection(path.ue, path.server.address, 443)
        client.connect()
        client.send(50_000)  # 3WHS still in flight
        sim.run(until=5.0)
        assert got[0] == 50_000

    def test_handover_during_handshake(self):
        """The address changes while the initial SYN is in flight: the
        connection must still come up from the new address."""
        sim = Simulator()
        path = make_path(sim)
        got = [0]

        def on_conn(conn):
            conn.send(100_000)

        MptcpListener(path.server, 443, on_conn)
        client = MptcpConnection(path.ue, path.server.address, 443,
                                 address_wait=0.1)
        client.on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.connect()
        # Detach 1 ms in: the SYN (and any SYN-ACK) dies.
        sim.schedule(0.001, path.detach)
        sim.schedule(0.2, path.attach, "10.129.0")
        sim.run(until=20.0)
        assert got[0] == 100_000
        assert client.active_subflow.local_ip.startswith("10.129.0.")

    def test_two_quick_handovers_coalesce(self):
        """A second address change before the worker fires must not
        spawn a subflow towards a stale address."""
        sim = Simulator()
        path = make_path(sim)
        got = [0]

        def on_conn(conn):
            conn.send(500_000)

        MptcpListener(path.server, 443, on_conn)
        client = MptcpConnection(path.ue, path.server.address, 443,
                                 address_wait=0.5)
        client.on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.connect()
        sim.run(until=1.0)
        # Two detach/attach cycles inside one 500 ms worker window.
        path.detach()
        sim.schedule(0.05, path.attach, "10.130.0")
        sim.schedule(0.2, path.detach)
        sim.schedule(0.3, path.attach, "10.131.0")
        sim.run(until=30.0)
        assert got[0] == 500_000
        assert client.active_subflow.local_ip.startswith("10.131.0.")
        # Only one replacement subflow was needed.
        assert client.subflow_count <= 3


class TestServerSide:
    def test_server_backlog_flushes_to_late_subflow(self):
        """Data queued server-side while no subflow is usable flows once
        the replacement arrives."""
        sim = Simulator()
        path = make_path(sim)
        got = [0]
        server_conns = []

        def on_conn(conn):
            server_conns.append(conn)

        MptcpListener(path.server, 443, on_conn)
        client = MptcpConnection(path.ue, path.server.address, 443,
                                 address_wait=0.2)
        client.on_data = lambda n: got.__setitem__(0, got[0] + n)
        client.connect()
        sim.run(until=1.0)
        path.detach()  # kill the path, then have the server send
        sim.run(until=1.5)
        server_conns[0].send(200_000)
        sim.schedule(0.1, path.attach, "10.129.0")
        sim.run(until=30.0)
        assert got[0] == 200_000

    def test_stale_subflows_pruned_after_multiple_moves(self):
        sim = Simulator()
        path = make_path(sim)

        server_conns = []
        MptcpListener(path.server, 443, server_conns.append)
        client = MptcpConnection(path.ue, path.server.address, 443,
                                 address_wait=0.1)
        client.connect()
        sim.run(until=1.0)
        for index, at in enumerate((1.0, 3.0, 5.0)):
            sim.schedule_at(at, path.detach)
            sim.schedule_at(at + 0.1, path.attach, f"10.{140 + index}.0")
        # Keep a trickle flowing so REMOVE_ADDR always gets through.
        def trickle():
            if client.active_subflow is not None \
                    and client.active_subflow.state != "DONE":
                client.send(1000)
            if sim.now < 8.0:
                sim.schedule(0.5, trickle)
        sim.schedule(0.5, trickle)
        sim.run(until=12.0)
        # Server kept only the live subflow.
        assert len(server_conns[0].subflows) == 1
        assert len(client.subflows) == 1
