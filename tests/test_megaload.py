"""Megaload workload + the bugfix sweep that rode along with it.

Covers the population-scale harness (determinism, engine parity,
workload sanity), the adaptive broker batch window, and the fixes the
megaload drive surfaced: the ``links=None`` dataclass default, silent
attach-failure swallowing, and the O(n) AMBR bearer scan.
"""

import pytest

from repro.core.broker import AdaptiveBatchWindow
from repro.core.mobility import CellBricksNetwork, MobilityManager
from repro.fivegc.network5g import CellBricks5GNetwork
from repro.lte.bearer import SgwPgw
from repro.net import Simulator
from repro.testbed.megaload import run_cell, run_megaload

# Small enough to keep the suite fast, large enough for every lifecycle
# path (retries, idle detaches, multi-segment mobility) to fire.
SMALL = dict(ues=2000, sites=32, duration=30.0, tick=0.05, seed=11)


class TestAdaptiveBatchWindow:
    def test_starts_at_min_window(self):
        window = AdaptiveBatchWindow(min_window=0.0002, max_window=0.008)
        assert window.window() == 0.0002

    def test_tracks_sustained_arrival_rate(self):
        # 100 us inter-arrival gap, full_size 32 -> ~3.2 ms window
        # (stretch to fill a batch under sustained load, Nagle-style).
        window = AdaptiveBatchWindow(min_window=0.0002, max_window=0.008,
                                     full_size=32)
        for i in range(200):
            window.observe(i * 0.0001)
        assert window.window() == pytest.approx(0.0032, rel=0.05)

    def test_clamps_to_max_window(self):
        window = AdaptiveBatchWindow(min_window=0.0002, max_window=0.008,
                                     full_size=32)
        for i in range(50):
            window.observe(i * 0.002)   # 2 ms gaps -> 64 ms unclamped
        assert window.window() == 0.008

    def test_sparse_arrivals_collapse_to_min(self):
        # Gaps at/above max_window mean batching can't help: the next
        # request won't arrive within any permissible window, so waiting
        # only adds latency.
        window = AdaptiveBatchWindow(min_window=0.0002, max_window=0.008)
        for i in range(50):
            window.observe(i * 0.5)
        assert window.window() == 0.0002

    def test_full_triggers_at_full_size(self):
        window = AdaptiveBatchWindow(full_size=8)
        assert not window.full(7)
        assert window.full(8)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveBatchWindow(min_window=0.01, max_window=0.001)
        with pytest.raises(ValueError):
            AdaptiveBatchWindow(full_size=0)


class TestNetworkLinksDefault:
    """``links`` used to default to None (mutable-default workaround gone
    wrong): hand-constructed networks crashed every caller that iterated
    ``network.links`` (the chaos harness, the megaload sweep)."""

    def test_lte_network_defaults_to_empty_dict(self):
        network = CellBricksNetwork(
            sim=Simulator(), ca=None, broker_host=None, brokerd=None,
            sites={}, ue_host=None, credentials=None)
        assert network.links == {}
        for _name, _link in network.links.items():   # the crashing idiom
            pass

    def test_5g_network_defaults_to_empty_dict(self):
        network = CellBricks5GNetwork(
            sim=Simulator(), ca=None, broker_host=None, brokerd=None,
            sites={}, ue_host=None, credentials=None)
        assert network.links == {}

    def test_default_dicts_are_not_shared(self):
        first = CellBricksNetwork(
            sim=Simulator(), ca=None, broker_host=None, brokerd=None,
            sites={}, ue_host=None, credentials=None)
        second = CellBricksNetwork(
            sim=Simulator(), ca=None, broker_host=None, brokerd=None,
            sites={}, ue_host=None, credentials=None)
        first.links["x"] = object()
        assert second.links == {}


class _FakeResult:
    def __init__(self, success, cause="", latency=0.01, ue_ip="10.128.0.2"):
        self.success = success
        self.cause = cause
        self.latency = latency
        self.ue_ip = ue_ip


class TestAttachFailureAccounting:
    def _manager(self):
        network = CellBricksNetwork(
            sim=Simulator(), ca=None, broker_host=None, brokerd=None,
            sites={}, ue_host=None, credentials=None)
        return MobilityManager(network)

    def test_failures_are_counted_not_swallowed(self):
        manager = self._manager()
        manager._attach_done(_FakeResult(False, cause="quota_exceeded"))
        manager._attach_done(_FakeResult(False, cause="quota_exceeded"))
        manager._attach_done(_FakeResult(False))
        assert manager.attach_failures == 3
        assert manager.failure_causes == {"quota_exceeded": 2,
                                          "unspecified": 1}
        assert manager.attach_latencies == []   # no phantom latency rows

    def test_on_failed_hook_fires_with_site_and_result(self):
        manager = self._manager()
        seen = []
        manager.on_failed = lambda site, result: seen.append((site, result))
        result = _FakeResult(False, cause="denied")
        manager._attach_done(result)
        assert seen == [(None, result)]

    def test_success_path_untouched(self):
        manager = self._manager()
        attached = []
        manager.on_attached = lambda site, result: attached.append(result)
        manager._attach_done(_FakeResult(True, latency=0.042))
        assert manager.attach_failures == 0
        assert manager.attach_latencies == [0.042]
        assert len(attached) == 1


class TestBearerIpIndex:
    def test_bearer_by_ip_round_trip(self):
        spgw = SgwPgw()
        bearer = spgw.create_default_bearer("alice", qci=9,
                                            ambr_dl_bps=1e7,
                                            ambr_ul_bps=1e6)
        assert spgw.bearer_by_ip(bearer.ue_ip) is bearer
        assert spgw.bearer_by_ip("10.99.0.1") is None

    def test_deleted_bearer_drops_out_of_index(self):
        spgw = SgwPgw()
        bearer = spgw.create_default_bearer("alice", qci=9,
                                            ambr_dl_bps=1e7,
                                            ambr_ul_bps=1e6)
        spgw.delete_bearer(bearer.ebi)
        assert spgw.bearer_by_ip(bearer.ue_ip) is None

    def test_reattach_reindexes(self):
        spgw = SgwPgw()
        first = spgw.create_default_bearer("alice", qci=9,
                                           ambr_dl_bps=1e7,
                                           ambr_ul_bps=1e6)
        second = spgw.create_default_bearer("alice", qci=9,
                                            ambr_dl_bps=2e7,
                                            ambr_ul_bps=2e6)
        assert spgw.bearer_by_ip(second.ue_ip) is second
        assert first.ue_ip == second.ue_ip or \
            spgw.bearer_by_ip(first.ue_ip) is None


class TestMegaload:
    def test_same_seed_same_digest(self):
        first = run_cell(engine="optimized", **SMALL)
        second = run_cell(engine="optimized", **SMALL)
        assert first["digest"] == second["digest"]
        assert first["workload"] == second["workload"]

    def test_engine_parity_under_fixed_window(self):
        # With the broker window pinned to the historical fixed 2 ms,
        # the batched tick-calendar engine must replay *exactly* the
        # legacy engine's workload outcome — the optimization changes
        # execution mechanics, never simulated behavior.
        legacy = run_cell(engine="legacy", **SMALL)
        optimized = run_cell(engine="optimized", adaptive=False, **SMALL)
        assert legacy["workload"] == optimized["workload"]
        assert legacy["digest"] == optimized["digest"]

    def test_workload_exercises_every_lifecycle_path(self):
        cell = run_cell(engine="optimized", **SMALL)
        workload = cell["workload"]
        assert workload["arrived"] == SMALL["ues"]
        assert workload["attach_ok"] > 0
        assert workload["moves"] > 0
        assert workload["idle_detaches"] > 0
        assert workload["broker_batches"] > 0
        assert workload["attach_ms_p99"] >= workload["attach_ms_p50"] > 0
        # Conservation: every arrival either departed, idled out, is
        # still attached at horizon, or gave up after its retry.
        assert workload["attach_ok"] <= workload["broker_requests"]

    def test_legacy_engine_accumulates_cancelled_garbage(self):
        # The legacy cell runs with compaction off and one heap event
        # per action — the pathology the optimized engine removes.
        legacy = run_cell(engine="legacy", **SMALL)
        optimized = run_cell(engine="optimized", **SMALL)
        assert legacy["perf"]["events_scheduled"] > \
            5 * optimized["perf"]["events_scheduled"]
        assert legacy["compaction"] is False
        assert optimized["compaction"] is True

    def test_report_structure_and_speedup_row(self):
        report = run_megaload(**SMALL)
        assert {cell["engine"] for cell in report["cells"]} == \
            {"legacy", "optimized"}
        assert report["speedup"]["speedup"] > 0
        for cell in report["cells"]:
            assert set(cell) == {"engine", "compaction", "workload",
                                 "digest", "perf"}
            assert cell["perf"]["events_processed"] > 0

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            run_cell(engine="warp", **SMALL)


class TestRssUnits:
    """``ru_maxrss`` is KiB on Linux but bytes on macOS — the report
    must normalize per platform instead of guessing from magnitude."""

    def test_linux_maxrss_is_kib(self):
        from repro.testbed.megaload import _rss_bytes
        assert _rss_bytes(2048, platform="linux") == 2048 * 1024.0

    def test_darwin_maxrss_is_bytes(self):
        from repro.testbed.megaload import _rss_bytes
        assert _rss_bytes(2048, platform="darwin") == 2048.0

    def test_large_linux_value_not_misread_as_bytes(self):
        from repro.testbed.megaload import _rss_bytes
        # 32 GiB in KiB units: the old magnitude heuristic flipped to
        # byte units here and under-reported by 1024x.
        raw_kib = 32 * 1024 * 1024 * 1024 // 1024
        assert _rss_bytes(raw_kib, platform="linux") == \
            32 * 1024 ** 3 * 1.0


# A mixed-fidelity micro-cell: 4 real UEs riding a 400-UE scripted
# population (big enough for moves/failures, small enough for CI).
MIXED = dict(ues=400, sites=8, duration=20.0, tick=0.05, seed=13,
             engine="optimized", real_fraction=0.01, real_sites=2)


class TestMixedFidelity:
    @pytest.mark.parametrize("rat", ["lte", "5g"])
    def test_two_seeded_runs_identical(self, rat):
        first = run_cell(real_rat=rat, **MIXED)
        second = run_cell(real_rat=rat, **MIXED)
        assert first["digest"] == second["digest"]
        assert first["workload"]["real_cohort"] == \
            second["workload"]["real_cohort"]
        assert first["workload"] == second["workload"]

    def test_cohort_runs_the_real_attach_path(self):
        cell = run_cell(**MIXED)
        cohort = cell["workload"]["real_cohort"]
        assert cohort["count"] == 4          # round(400 * 0.01)
        assert cohort["arrived"] == 4
        assert cohort["attach_ok"] > 0
        assert cohort["broker_pipeline_requests"] > 0
        if cohort["attach_ok"]:
            assert cohort["attach_ms_p99"] >= cohort["attach_ms_p50"] > 0

    def test_charged_service_time_matches_scripted_busy(self):
        cell = run_cell(**MIXED)
        perf = cell["perf"]
        charged = perf["broker_service_cost_s"] \
            * cell["workload"]["broker_requests"]
        assert perf["broker_busy_s"] == pytest.approx(charged, abs=1e-5)
        # Charging replaced the calibrated constant with the measured
        # crypto cost, and the report says so.
        charging = cell["workload"]["crypto_charging"]
        assert charging["attach_cost_s"] == perf["broker_service_cost_s"]
        assert charging["sign_ms"] > 0

    def test_real_fraction_zero_keeps_plain_report(self):
        cell = run_cell(engine="optimized", **SMALL)
        assert "real_cohort" not in cell["workload"]
        assert "real_fraction" not in cell["workload"]
        assert "crypto_charging" not in cell["workload"]

    def test_rejects_bad_real_fraction(self):
        with pytest.raises(ValueError):
            run_cell(engine="optimized", real_fraction=1.5, **SMALL)

    def test_rejects_unknown_rat(self):
        bad = dict(MIXED)
        bad["real_rat"] = "6g"
        with pytest.raises(ValueError):
            run_cell(**bad)
