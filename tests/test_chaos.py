"""Fault-injection harness tests: the control plane under loss/outages.

The acceptance bars from the reliability work: attaches converge (or
fail cleanly with an EMM reset) under loss and broker outages, revoked
sessions are never served past the run (unauthorized-session-seconds is
exactly 0), a fault-free run issues zero retransmissions and keeps the
Fig 7 latency envelope, and all retry/dedup state is bounded.
"""

import pytest

from repro.core.mobility import build_cellbricks_network
from repro.emulation import (
    ChaosMonkey,
    ChaosSchedule,
    brownout,
    loss_burst,
    outage,
    partition,
    run_chaos,
)
from repro.net import Simulator


class TestChaosMonkey:
    """Unit tests for the fault injectors themselves."""

    def build(self):
        sim = Simulator()
        network = build_cellbricks_network(sim, site_names=("btelco-a",))
        return sim, network

    def test_loss_burst_applies_and_restores(self):
        sim, network = self.build()
        link = network.links["btelco-a-sig-radio"]
        monkey = ChaosMonkey(sim, network.links)
        monkey.arm(ChaosSchedule().add(
            loss_burst(1.0, 2.0, 0.3, target="*-sig-radio")))
        sim.run(until=1.5)
        assert link.a_to_b.loss_rate == 0.3
        assert link.b_to_a.loss_rate == 0.3
        sim.run(until=4.0)
        assert link.a_to_b.loss_rate == 0.0
        assert link.b_to_a.loss_rate == 0.0
        assert monkey.faults_injected == 1

    def test_outage_matches_glob_and_recovers(self):
        sim, network = self.build()
        broker_link = network.links["btelco-a-broker"]
        radio = network.links["btelco-a-sig-radio"]
        monkey = ChaosMonkey(sim, network.links)
        monkey.arm(ChaosSchedule().add(outage(1.0, 1.0,
                                              target="*-broker")))
        sim.run(until=1.5)
        assert not broker_link.a_to_b.up and not broker_link.b_to_a.up
        assert radio.a_to_b.up             # untargeted link untouched
        sim.run(until=3.0)
        assert broker_link.a_to_b.up and broker_link.b_to_a.up

    def test_partition_downs_exactly_one_half(self):
        sim, network = self.build()
        link = network.links["btelco-a-backhaul"]
        monkey = ChaosMonkey(sim, network.links)
        monkey.arm(ChaosSchedule().add(
            partition(1.0, 1.0, target="*-backhaul",
                      direction="b_to_a")))
        sim.run(until=1.5)
        assert link.a_to_b.up and not link.b_to_a.up
        sim.run(until=3.0)
        assert link.b_to_a.up

    def test_brownout_shadows_instance_not_class(self):
        sim, network = self.build()
        brokerd = network.brokerd
        klass = type(brokerd)
        baseline = dict(klass.processing_costs)
        monkey = ChaosMonkey(sim, network.links, brokerd=brokerd)
        monkey.arm(ChaosSchedule().add(brownout(1.0, 1.0, factor=10.0)))
        sim.run(until=1.5)
        assert "processing_costs" in brokerd.__dict__
        for message, cost in baseline.items():
            assert brokerd.processing_costs[message] == \
                pytest.approx(cost * 10.0)
        assert klass.processing_costs == baseline   # class dict untouched
        sim.run(until=3.0)
        assert "processing_costs" not in brokerd.__dict__
        assert klass.processing_costs == baseline

    def test_unknown_kind_rejected(self):
        sim, network = self.build()
        monkey = ChaosMonkey(sim, network.links)
        from repro.emulation.chaos import ChaosEvent
        monkey.arm(ChaosSchedule().add(
            ChaosEvent(at=0.5, kind="earthquake")))
        with pytest.raises(ValueError, match="earthquake"):
            sim.run()


class TestLossyAttachMatrix:
    """Every attach either succeeds or fails cleanly; loss only costs
    retransmissions, never wedged state."""

    @pytest.mark.parametrize("loss", [0.0, 0.05, 0.2])
    def test_attach_matrix(self, loss):
        report = run_chaos(attaches=30, base_loss=loss, seed=11)
        assert report.attempts == 30
        assert report.successes + report.failures == 30
        if loss == 0.0:
            assert report.successes == 30
            assert report.retransmissions == 0
        elif loss == 0.05:
            assert report.success_rate >= 0.95
            assert report.retransmissions >= 1
        else:
            # 20% loss: heavy retransmission, and the rare give-up must
            # be a clean EMM reset (counted, with a cause), not a wedge.
            assert report.success_rate >= 0.6
            assert report.retransmissions >= 10
            for cause in report.failure_causes:
                assert "timed out" in cause or "unreachable" in cause
        # Bounded state everywhere once the run drains.
        assert report.broker_stats["requests_outstanding"] == 0
        assert report.broker_stats["revocation_batches_outstanding"] == 0
        for stats in report.site_stats.values():
            assert stats["requests_outstanding"] == 0

    def test_mid_attach_broker_outage_recovers(self):
        schedule = ChaosSchedule().add(outage(2.0, 2.0,
                                              target="*-broker"))
        report = run_chaos(attaches=40, schedule=schedule, seed=11)
        assert report.attempts == 40
        assert report.successes + report.failures == 40
        # A 2s outage sits well inside the retry budget (~8.8s): the
        # attaches in flight ride it out on retransmissions.
        assert report.success_rate >= 0.95
        assert report.retransmissions >= 1
        assert report.broker_stats["requests_outstanding"] == 0


class TestRevocationUnderLoss:
    def test_unauthorized_session_seconds_is_zero(self):
        schedule = ChaosSchedule().add(
            loss_burst(1.0, 3.0, 0.3, target="*-broker"))
        report = run_chaos(attaches=40, schedule=schedule,
                           revoke_every=5, seed=3, base_loss=0.05)
        assert report.revocations > 0
        assert report.unauthorized_session_seconds == 0.0
        stats = report.broker_stats
        assert stats["revocation_batches_sent"] >= 1
        assert stats["revocation_batches_acked"] == \
            stats["revocation_batches_sent"]
        assert stats["revocation_batches_outstanding"] == 0
        assert stats["revocation_batches_failed"] == 0

    def test_zero_fault_run_is_silent_and_fast(self):
        report = run_chaos(attaches=25, seed=7)
        assert report.successes == 25
        assert report.retransmissions == 0
        assert report.unauthorized_session_seconds == 0.0
        # Fig 7 envelope: the reliability layer must not change the
        # fault-free attach latency.
        assert 20.0 <= report.attach_p50_ms <= 80.0
        assert 20.0 <= report.attach_p99_ms <= 80.0

    def test_report_is_deterministic_under_fixed_seed(self):
        def once():
            schedule = ChaosSchedule().add(
                loss_burst(0.5, 2.0, 0.2))
            return run_chaos(attaches=15, schedule=schedule,
                             revoke_every=4, seed=5,
                             base_loss=0.05).to_dict()

        assert once() == once()
