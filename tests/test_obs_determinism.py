"""Determinism of the telemetry layer.

Two identically-seeded runs must produce *byte-identical* JSONL traces:
the tracer is passive (no scheduled events, no randomness, virtual
timestamps only) and id allocation is a plain counter, so any divergence
means instrumentation perturbed the simulation.
"""

from repro.emulation import ChaosSchedule, brownout, outage, run_chaos
from repro.obs import Obs, spans_to_jsonl
from repro.testbed import ARCH_CELLBRICKS, run_traced_attach


def _chaos_trace(seed: int) -> tuple:
    schedule = ChaosSchedule()
    schedule.add(outage(2.0, 1.5, target="*-broker"))
    schedule.add(brownout(5.0, 1.5))
    obs = Obs()
    report = run_chaos(attaches=40, schedule=schedule, revoke_every=10,
                       seed=seed, base_loss=0.05, obs=obs)
    return report, spans_to_jsonl(obs.tracer.spans())


class TestByteIdenticalTraces:
    def test_seeded_chaos_runs_produce_identical_jsonl(self):
        report_a, jsonl_a = _chaos_trace(seed=7)
        report_b, jsonl_b = _chaos_trace(seed=7)
        assert jsonl_a  # non-trivial trace
        assert jsonl_a == jsonl_b
        assert report_a.to_dict() == report_b.to_dict()

    def test_seeded_attach_traces_identical(self):
        runs = []
        for _ in range(2):
            _, obs, _ = run_traced_attach(arch=ARCH_CELLBRICKS,
                                          placement="us-west-1", trials=5)
            runs.append(spans_to_jsonl(obs.tracer.spans()))
        assert runs[0] == runs[1]

    def test_tracing_does_not_perturb_the_chaos_run(self):
        """The same seed with tracing off yields the same report."""
        schedule = ChaosSchedule()
        schedule.add(outage(2.0, 1.5, target="*-broker"))
        schedule.add(brownout(5.0, 1.5))
        untraced = run_chaos(attaches=40, schedule=schedule,
                             revoke_every=10, seed=7, base_loss=0.05)
        traced, _ = _chaos_trace(seed=7)
        assert untraced.to_dict() == traced.to_dict()
