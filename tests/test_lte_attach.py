"""Integration tests: the baseline LTE attach over the testbed topology."""

import random

import pytest

from repro.lte import (
    Agw,
    ENodeB,
    Imsi,
    ImsiGenerator,
    SubscriberDb,
    TEST_PLMN,
    UeNas,
    UsimState,
)
from repro.net import Simulator
from repro.testbed.placement import (
    AGW_ADDRESS,
    CLOUD_DB_ADDRESS,
    ENB_ADDRESS,
    TestbedTopology,
)


def build_stack(placement="local", provision=True, seed=1):
    sim = Simulator()
    topo = TestbedTopology.build(sim, placement)
    db = SubscriberDb(topo.db_host, rng=random.Random(seed))
    agw = Agw(topo.agw_host, subscriber_db_ip=CLOUD_DB_ADDRESS)
    enb = ENodeB(topo.enb_host, agw_ip=AGW_ADDRESS)
    imsi = ImsiGenerator().next()
    record = db.provision(imsi) if provision else None
    k = record.k if record else bytes(16)
    ue = UeNas(topo.ue_host, ENB_ADDRESS, imsi, UsimState(k=k),
               str(TEST_PLMN))
    return sim, topo, db, agw, enb, ue, imsi


class TestBaselineAttach:
    def test_attach_succeeds_and_assigns_ip(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        results = []
        ue.on_attach_done = results.append
        ue.attach()
        sim.run(until=2.0)
        assert results and results[0].success
        assert results[0].ue_ip.startswith("10.128.0.")
        assert ue.state == "ATTACHED"
        assert agw.attaches_completed == 1

    def test_attach_creates_bearer_with_subscription_qos(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        ue.attach()
        sim.run(until=2.0)
        bearer = agw.spgw.bearer_for(str(imsi))
        assert bearer is not None
        assert bearer.qci == 9
        assert bearer.active

    def test_attach_performs_two_s6a_round_trips(self):
        """The baseline pays AIR + ULR — the overhead CellBricks removes."""
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        ue.attach()
        sim.run(until=2.0)
        assert db.air_count == 1
        assert db.ulr_count == 1

    def test_unknown_imsi_rejected(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack(provision=False)
        results = []
        ue.on_attach_done = results.append
        ue.attach()
        sim.run(until=2.0)
        assert results and not results[0].success
        assert "USER_UNKNOWN" in results[0].cause
        assert agw.attaches_rejected == 1

    def test_barred_subscriber_rejected(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        db.bar(imsi)
        results = []
        ue.on_attach_done = results.append
        ue.attach()
        sim.run(until=2.0)
        assert results and not results[0].success

    def test_wrong_sim_key_fails_authentication(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        ue.usim = UsimState(k=bytes(16))  # SIM with a different K
        results = []
        ue.on_attach_done = results.append
        ue.attach()
        sim.run(until=2.0)
        assert results and not results[0].success
        assert "authentication" in results[0].cause.lower()

    def test_detach_releases_bearer_and_allows_reattach(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        results = []
        ue.on_attach_done = results.append
        ue.attach()
        sim.run(until=2.0)
        ue.detach()
        sim.run(until=3.0)
        assert ue.state == "DEREGISTERED"
        assert agw.spgw.bearer_for(str(imsi)) is None
        ue.attach()
        sim.run(until=5.0)
        assert len(results) == 2 and results[1].success

    def test_attach_latency_grows_with_placement(self):
        latencies = {}
        for placement in ("local", "us-west-1", "us-east-1"):
            sim, topo, db, agw, enb, ue, imsi = build_stack(placement)
            results = []
            ue.on_attach_done = results.append
            ue.attach()
            sim.run(until=2.0)
            latencies[placement] = results[0].latency
        assert latencies["local"] < latencies["us-west-1"] \
            < latencies["us-east-1"]
        # Two S6a round-trips: each placement step adds ~2 RTT deltas.
        delta_we = latencies["us-east-1"] - latencies["us-west-1"]
        assert delta_we == pytest.approx(2 * 2 * (0.0355 - 0.0025), rel=0.05)

    def test_module_times_accumulate(self):
        sim, topo, db, agw, enb, ue, imsi = build_stack()
        ue.attach()
        sim.run(until=2.0)
        assert agw.module_time > 0
        assert enb.module_time > 0
        assert ue.module_time > 0
        assert db.module_time > 0

    def test_concurrent_ues_all_attach(self):
        sim = Simulator()
        topo = TestbedTopology.build(sim, "local")
        db = SubscriberDb(topo.db_host, rng=random.Random(3))
        agw = Agw(topo.agw_host, subscriber_db_ip=CLOUD_DB_ADDRESS)
        enb = ENodeB(topo.enb_host, agw_ip=AGW_ADDRESS)
        gen = ImsiGenerator()
        results = []
        from repro.net import Host, Link
        for i in range(10):
            ue_host = Host(sim, f"ue{i}", address=f"10.2{10 + i}.1.2")
            link = Link(sim, f"radio{i}", ue_host, topo.enb_host,
                        bandwidth_bps=1e9, delay_s=0.0001)
            topo.enb_host.add_route(f"10.2{10 + i}.1", link)
            imsi = gen.next()
            record = db.provision(imsi)
            ue = UeNas(ue_host, ENB_ADDRESS, imsi, UsimState(k=record.k),
                       str(TEST_PLMN))
            ue.on_attach_done = results.append
            sim.schedule(0.001 * i, ue.attach)
        sim.run(until=5.0)
        assert len(results) == 10
        assert all(r.success for r in results)
        ips = {r.ue_ip for r in results}
        assert len(ips) == 10  # unique addresses
