"""Unit + property tests for the from-scratch crypto substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    CryptoError,
    IntegrityError,
    PublicKey,
    ROLE_BROKER,
    ROLE_BTELCO,
    constant_time_equal,
    generate_keypair,
    hkdf,
    hmac_sha256,
    kdf_3gpp,
    open_sealed,
    seal,
    sha256,
    validate_certificate,
)
from repro.crypto.primes import generate_prime, is_probable_prime


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=1024, rng=random.Random(0xC0FFEE))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(bits=1024, rng=random.Random(0xBEEF))


class TestPrimes:
    def test_small_primes_recognized(self):
        for p in (2, 3, 5, 7, 97, 251):
            assert is_probable_prime(p)

    def test_small_composites_rejected(self):
        for n in (0, 1, 4, 9, 91, 221, 561):  # 561 is a Carmichael number
            assert not is_probable_prime(n)

    def test_generated_prime_has_exact_bit_length(self):
        rng = random.Random(7)
        p = generate_prime(256, rng)
        assert p.bit_length() == 256
        assert is_probable_prime(p)

    def test_too_small_request_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        sig = keypair.sign(b"attach-request")
        assert keypair.public_key.verify(b"attach-request", sig)

    def test_verify_rejects_tampered_message(self, keypair):
        sig = keypair.sign(b"attach-request")
        assert not keypair.public_key.verify(b"attach-request!", sig)

    def test_verify_rejects_tampered_signature(self, keypair):
        sig = bytearray(keypair.sign(b"m"))
        sig[5] ^= 0xFF
        assert not keypair.public_key.verify(b"m", bytes(sig))

    def test_verify_rejects_wrong_key(self, keypair, other_keypair):
        sig = keypair.sign(b"m")
        assert not other_keypair.public_key.verify(b"m", sig)

    def test_verify_rejects_wrong_length(self, keypair):
        assert not keypair.public_key.verify(b"m", b"short")

    def test_signatures_are_randomized_but_both_valid(self, keypair):
        sig1 = keypair.sign(b"m")
        sig2 = keypair.sign(b"m")
        assert sig1 != sig2  # PSS salt
        assert keypair.public_key.verify(b"m", sig1)
        assert keypair.public_key.verify(b"m", sig2)

    def test_empty_message(self, keypair):
        sig = keypair.sign(b"")
        assert keypair.public_key.verify(b"", sig)


class TestHybridEncryption:
    def test_roundtrip(self, keypair):
        ct = keypair.public_key.encrypt(b"secret payload")
        assert keypair.decrypt(ct) == b"secret payload"

    def test_long_plaintext(self, keypair):
        plaintext = bytes(range(256)) * 40
        ct = keypair.public_key.encrypt(plaintext)
        assert keypair.decrypt(ct) == plaintext

    def test_associated_data_binds(self, keypair):
        ct = keypair.public_key.encrypt(b"m", b"context-a")
        with pytest.raises(CryptoError):
            keypair.decrypt(ct, b"context-b")

    def test_wrong_key_fails(self, keypair, other_keypair):
        ct = keypair.public_key.encrypt(b"m")
        with pytest.raises(CryptoError):
            other_keypair.decrypt(ct)

    def test_tampered_ciphertext_fails(self, keypair):
        ct = bytearray(keypair.public_key.encrypt(b"m"))
        ct[-1] ^= 0x01
        with pytest.raises(CryptoError):
            keypair.decrypt(bytes(ct))

    def test_truncated_ciphertext_fails(self, keypair):
        with pytest.raises(CryptoError):
            keypair.decrypt(b"\x00" * 10)

    def test_ciphertexts_are_randomized(self, keypair):
        assert keypair.public_key.encrypt(b"m") != keypair.public_key.encrypt(b"m")


class TestPublicKeySerialization:
    def test_roundtrip(self, keypair):
        raw = keypair.public_key.to_bytes()
        restored = PublicKey.from_bytes(raw)
        assert restored == keypair.public_key

    def test_fingerprint_is_stable(self, keypair):
        assert keypair.public_key.fingerprint() == keypair.public_key.fingerprint()

    def test_fingerprint_distinguishes_keys(self, keypair, other_keypair):
        assert keypair.public_key.fingerprint() != other_keypair.public_key.fingerprint()


class TestSymmetricCipher:
    def test_roundtrip(self):
        key = sha256(b"k")
        assert open_sealed(key, seal(key, b"hello")) == b"hello"

    def test_wrong_key_rejected(self):
        sealed = seal(sha256(b"k1"), b"hello")
        with pytest.raises(IntegrityError):
            open_sealed(sha256(b"k2"), sealed)

    def test_tamper_rejected(self):
        key = sha256(b"k")
        sealed = bytearray(seal(key, b"hello"))
        sealed[20] ^= 0x80
        with pytest.raises(IntegrityError):
            open_sealed(key, bytes(sealed))

    def test_associated_data_mismatch_rejected(self):
        key = sha256(b"k")
        sealed = seal(key, b"hello", b"report-v1")
        with pytest.raises(IntegrityError):
            open_sealed(key, sealed, b"report-v2")

    def test_short_message_rejected(self):
        with pytest.raises(IntegrityError):
            open_sealed(sha256(b"k"), b"tiny")

    def test_empty_plaintext(self):
        key = sha256(b"k")
        assert open_sealed(key, seal(key, b"")) == b""

    @given(st.binary(max_size=2048))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext):
        key = sha256(b"prop")
        assert open_sealed(key, seal(key, plaintext)) == plaintext


class TestKdf:
    def test_hkdf_length(self):
        assert len(hkdf(b"ikm", length=64)) == 64

    def test_hkdf_info_separates(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

    def test_hkdf_deterministic(self):
        assert hkdf(b"ikm", salt=b"s", info=b"i") == hkdf(b"ikm", salt=b"s", info=b"i")

    def test_hkdf_rfc5869_case_1(self):
        # RFC 5869 A.1 test vector.
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, salt=salt, info=info, length=42)
        assert okm.hex() == ("3cb25f25faacd57a90434f64d0362f2a"
                             "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
                             "34007208d5b887185865")

    def test_hkdf_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=0)

    def test_kdf_3gpp_fc_range(self):
        with pytest.raises(ValueError):
            kdf_3gpp(b"key", 300)

    def test_kdf_3gpp_parameters_separate(self):
        k = sha256(b"kasme")
        assert kdf_3gpp(k, 0x15, b"a") != kdf_3gpp(k, 0x15, b"b")
        assert kdf_3gpp(k, 0x15, b"a") != kdf_3gpp(k, 0x16, b"a")

    def test_hmac_sha256_known_answer(self):
        # RFC 4231 test case 2.
        out = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == ("5bdcc146bf60754e6a042426089575c7"
                             "5a003f089d2739839dec58b964ec3843")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")


class TestCertificates:
    @pytest.fixture(scope="class")
    def ca(self):
        return CertificateAuthority(
            key=generate_keypair(bits=1024, rng=random.Random(42)))

    def test_issue_and_validate(self, ca, keypair):
        cert = ca.issue("t1.example", ROLE_BTELCO, keypair.public_key,
                        not_before=0.0, not_after=100.0)
        ca.validate(cert, now=50.0, expected_role=ROLE_BTELCO)

    def test_expired_rejected(self, ca, keypair):
        cert = ca.issue("t1", ROLE_BTELCO, keypair.public_key,
                        not_before=0.0, not_after=10.0)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=20.0)

    def test_not_yet_valid_rejected(self, ca, keypair):
        cert = ca.issue("t1", ROLE_BTELCO, keypair.public_key,
                        not_before=10.0, not_after=20.0)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=5.0)

    def test_wrong_role_rejected(self, ca, keypair):
        cert = ca.issue("b1", ROLE_BROKER, keypair.public_key)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=1.0, expected_role=ROLE_BTELCO)

    def test_unknown_role_rejected_at_issue(self, ca, keypair):
        with pytest.raises(CertificateError):
            ca.issue("x", "mallory", keypair.public_key)

    def test_forged_signature_rejected(self, ca, keypair, other_keypair):
        cert = ca.issue("t1", ROLE_BTELCO, keypair.public_key)
        forged = Certificate(**{**cert.__dict__,
                                "signature": other_keypair.sign(cert.tbs_bytes())})
        with pytest.raises(CertificateError):
            ca.validate(forged, now=1.0)

    def test_tampered_subject_rejected(self, ca, keypair):
        cert = ca.issue("t1", ROLE_BTELCO, keypair.public_key)
        tampered = Certificate(**{**cert.__dict__, "subject": "t2"})
        with pytest.raises(CertificateError):
            ca.validate(tampered, now=1.0)

    def test_revocation(self, ca, keypair):
        cert = ca.issue("t-revoked", ROLE_BTELCO, keypair.public_key)
        ca.validate(cert, now=1.0)
        ca.revoke(cert.serial)
        with pytest.raises(CertificateError):
            ca.validate(cert, now=1.0)

    def test_offline_validation_with_ca_pubkey_only(self, ca, keypair):
        cert = ca.issue("t1", ROLE_BTELCO, keypair.public_key)
        validate_certificate(cert, ca.public_key, now=1.0,
                             expected_role=ROLE_BTELCO)

    def test_unsigned_rejected(self, ca, keypair):
        cert = Certificate(subject="t", role=ROLE_BTELCO,
                           public_key=keypair.public_key, issuer=ca.name,
                           serial=999, not_before=0, not_after=10)
        with pytest.raises(CertificateError):
            validate_certificate(cert, ca.public_key, now=1.0)
