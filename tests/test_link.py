"""Unit + property tests for links, token buckets, and address pools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import AddressPool, Packet, Simulator, TokenBucket, same_prefix
from repro.net.link import SimplexLink


def make_packet(size=1000, dst="10.0.0.2"):
    return Packet(src="10.0.0.1", dst=dst, protocol=17, size=size)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=5000)
        assert bucket.tokens_at(0.0) == 5000

    def test_consume_and_refill(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=5000)  # 1000 B/s
        bucket.consume(5000, now=0.0)
        assert bucket.tokens_at(0.0) == 0
        assert bucket.tokens_at(2.0) == pytest.approx(2000)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=5000)
        assert bucket.tokens_at(100.0) == 5000

    def test_delay_until_conforming(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        bucket.consume(1000, now=0.0)
        # need 500 bytes = 4000 bits at 8000 bps = 0.5 s
        assert bucket.delay_until_conforming(500, now=0.0) == pytest.approx(0.5)

    def test_conforming_packet_has_zero_delay(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        assert bucket.delay_until_conforming(1000, now=0.0) == 0.0

    def test_reset_refills(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        bucket.consume(1000, now=0.0)
        bucket.reset(now=0.0)
        assert bucket.tokens_at(0.0) == 1000

    def test_set_rate(self):
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        bucket.consume(1000, now=0.0)
        bucket.set_rate(16000)
        assert bucket.tokens_at(0.5) == pytest.approx(1000)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 100)
        with pytest.raises(ValueError):
            TokenBucket(100, 0)

    @given(rate=st.floats(min_value=1e3, max_value=1e8),
           burst=st.floats(min_value=100, max_value=1e6),
           size=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_tokens_never_exceed_burst(self, rate, burst, size):
        bucket = TokenBucket(rate, burst)
        bucket.consume(size, now=0.0)
        for t in (0.1, 1.0, 100.0):
            assert bucket.tokens_at(t) <= burst + 1e-6


class TestSimplexLink:
    def _make(self, sim, **kwargs):
        defaults = dict(bandwidth_bps=8e6, delay_s=0.01, loss_rate=0.0)
        defaults.update(kwargs)
        return SimplexLink(sim, "test", **defaults)

    def test_delivery_latency_is_serialization_plus_propagation(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8000, delay_s=0.5)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.send(make_packet(size=1000))  # 1000 B at 1000 B/s = 1 s
        sim.run()
        assert arrivals == [pytest.approx(1.5)]

    def test_fifo_serialization_backlog(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8000, delay_s=0.0)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.send(make_packet(size=1000))
        link.send(make_packet(size=1000))
        sim.run()
        assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_queue_limit_drops(self):
        sim = Simulator()
        link = self._make(sim, queue_limit_bytes=2500)
        assert link.send(make_packet(size=1000))
        assert link.send(make_packet(size=1000))
        assert not link.send(make_packet(size=1000))
        assert link.stats.dropped_queue == 1

    def test_down_link_drops_at_entry(self):
        sim = Simulator()
        link = self._make(sim)
        link.set_up(False)
        assert not link.send(make_packet())
        assert link.stats.dropped_down == 1

    def test_down_link_drops_in_flight(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8000, delay_s=1.0)
        delivered = []
        link.receiver = lambda p: delivered.append(p)
        link.send(make_packet(size=1000))
        sim.schedule(0.5, link.set_up, False)
        sim.run()
        assert delivered == []
        assert link.stats.dropped_down == 1

    def test_interrupt_recovers(self):
        sim = Simulator()
        link = self._make(sim)
        delivered = []
        link.receiver = lambda p: delivered.append(p)
        link.interrupt(1.0)
        sim.schedule(2.0, link.send, make_packet())
        sim.run()
        assert len(delivered) == 1

    def test_pause_delays_without_loss(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8e6, delay_s=0.01)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.send(make_packet(size=1000))
        link.pause(1.0)
        link.send(make_packet(size=1000))
        sim.run()
        # Both packets survive, delivered at/after the pause end, in order.
        assert len(arrivals) == 2
        assert all(t >= 1.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_pause_expires(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8e6, delay_s=0.0)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.pause(0.5)
        sim.schedule(1.0, link.send, make_packet(size=1000))
        sim.run()
        assert arrivals and arrivals[0] == pytest.approx(1.001, rel=0.01)

    def test_flush_discards_queue(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8000, delay_s=0.0)
        delivered = []
        link.receiver = lambda p: delivered.append(p)
        for _ in range(5):
            link.send(make_packet(size=1000))
        sim.schedule(0.5, link.flush)
        sim.run()
        assert len(delivered) == 0
        assert link.queued_bytes == 0

    def test_random_loss_rate(self):
        sim = Simulator()
        link = self._make(sim, loss_rate=0.5, queue_limit_bytes=10**9)
        delivered = []
        link.receiver = lambda p: delivered.append(p)
        for _ in range(1000):
            link.send(make_packet(size=100))
        sim.run()
        assert 350 < len(delivered) < 650

    def _drop_pattern(self, name, n=300, loss_rate=0.5):
        """Boolean delivery pattern of ``n`` sends over a lossy link."""
        sim = Simulator()
        link = SimplexLink(sim, name, bandwidth_bps=8e6, delay_s=0.001,
                           loss_rate=loss_rate, queue_limit_bytes=10**9)
        delivered = set()
        link.receiver = lambda p: delivered.add(p.packet_id)
        ids = []
        for _ in range(n):
            packet = make_packet(size=100)
            ids.append(packet.packet_id)
            link.send(packet)
        sim.run()
        return tuple(pid in delivered for pid in ids)

    def test_loss_decorrelated_across_links(self):
        # Every link used to default to random.Random(0): two lossy
        # links dropped the *same* packet indices in lockstep.  Seeds
        # are now derived from the link name.
        a = self._drop_pattern("radio-a")
        b = self._drop_pattern("radio-b")
        assert a != b
        # ... while staying individually plausible at loss_rate=0.5.
        assert 0.3 < sum(a) / len(a) < 0.7
        assert 0.3 < sum(b) / len(b) < 0.7

    def test_loss_reproducible_for_same_name(self):
        # Name-derived seeding keeps identically-seeded runs identical:
        # the same link name must reproduce the same drop pattern.
        assert self._drop_pattern("radio-a") == self._drop_pattern("radio-a")

    def test_explicit_rng_still_honored(self):
        import random
        sim = Simulator()
        link = SimplexLink(sim, "custom", bandwidth_bps=8e6, delay_s=0.001,
                           loss_rate=0.5, rng=random.Random(123))
        reference = random.Random(123)
        assert link.rng.random() == reference.random()

    def test_policing_drops_nonconforming(self):
        sim = Simulator()
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        link = self._make(sim, shaper=bucket, police=True)
        assert link.send(make_packet(size=1000))
        assert not link.send(make_packet(size=1000))
        assert link.stats.dropped_police == 1

    def test_shaping_queues_nonconforming(self):
        sim = Simulator()
        bucket = TokenBucket(rate_bps=8000, burst_bytes=1000)
        link = self._make(sim, bandwidth_bps=8e9, delay_s=0.0,
                          shaper=bucket, police=False)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.send(make_packet(size=1000))
        link.send(make_packet(size=1000))
        sim.run()
        assert arrivals[0] == pytest.approx(0.0, abs=1e-3)
        assert arrivals[1] == pytest.approx(1.0, abs=1e-2)

    def test_set_bandwidth_affects_new_packets(self):
        sim = Simulator()
        link = self._make(sim, bandwidth_bps=8000, delay_s=0.0)
        arrivals = []
        link.receiver = lambda p: arrivals.append(sim.now)
        link.set_bandwidth(16000)
        link.send(make_packet(size=1000))
        sim.run()
        assert arrivals == [pytest.approx(0.5)]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            self._make(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            self._make(sim, loss_rate=1.5)


class TestAddressPool:
    def test_allocates_under_prefix(self):
        pool = AddressPool("10.1.2")
        addr = pool.allocate()
        assert addr.startswith("10.1.2.")
        assert pool.owns(addr)

    def test_allocations_are_unique(self):
        pool = AddressPool("10.1.2")
        addrs = {pool.allocate() for _ in range(50)}
        assert len(addrs) == 50

    def test_release_allows_reuse(self):
        pool = AddressPool("10.1.2", first_host=2, last_host=2)
        addr = pool.allocate()
        with pytest.raises(RuntimeError):
            pool.allocate()
        pool.release(addr)
        assert pool.allocate() == addr

    def test_release_unknown_is_noop(self):
        pool = AddressPool("10.1.2")
        pool.release("10.1.2.200")  # never allocated

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            AddressPool("10.1.2.3")
        with pytest.raises(ValueError):
            AddressPool("10.300.1")

    def test_same_prefix_helper(self):
        assert same_prefix("10.1.2.3", "10.1.2.9")
        assert not same_prefix("10.1.2.3", "10.1.3.3")

    def test_allocated_count(self):
        pool = AddressPool("10.1.2")
        pool.allocate()
        pool.allocate()
        assert pool.allocated_count == 2
