"""Tests for GRE tunneling (the paper's OVS emulation mechanism)."""

import pytest

from repro.net import Host, Link, Packet, Simulator, TcpConnection, TcpListener
from repro.net.packet import PROTO_UDP
from repro.net.tunnel import GreEndpoint, TunneledHost


def build_carrier(sim):
    """Two 'modem' hosts joined by a carrier link that only routes the
    modem addresses."""
    client_modem = Host(sim, "client-modem", address="100.64.0.10")
    server_modem = Host(sim, "server-modem", address="100.64.0.20")
    Link(sim, "carrier", client_modem, server_modem,
         bandwidth_bps=20e6, delay_s=0.02)
    return client_modem, server_modem


class TestGreEndpoint:
    def test_encap_decap_roundtrip(self):
        sim = Simulator()
        client_modem, server_modem = build_carrier(sim)
        a = GreEndpoint(client_modem, peer_address="100.64.0.20")
        b = GreEndpoint(server_modem, peer_address="100.64.0.10")
        inner_seen = []
        b.on_inner_packet = inner_seen.append

        inner = Packet(src="10.200.0.2", dst="52.9.0.10",
                       protocol=PROTO_UDP, size=500)
        a.encapsulate(inner)
        sim.run(until=1.0)
        assert len(inner_seen) == 1
        # The inner packet crosses untouched: emulated addresses survive
        # a network that cannot route them.
        assert inner_seen[0].src == "10.200.0.2"
        assert inner_seen[0].dst == "52.9.0.10"
        assert a.encapsulated == 1
        assert b.decapsulated == 1

    def test_overhead_accounted(self):
        sim = Simulator()
        client_modem, server_modem = build_carrier(sim)
        a = GreEndpoint(client_modem, peer_address="100.64.0.20")
        GreEndpoint(server_modem, peer_address="100.64.0.10")
        inner = Packet(src="1.1.1.1", dst="2.2.2.2", protocol=PROTO_UDP,
                       size=500)
        link = client_modem.links[0].half_from(client_modem)
        a.encapsulate(inner)
        sim.run(until=1.0)
        assert link.stats.sent_bytes == 500 + 20 + 4  # inner + IP + GRE

    def test_closed_endpoint_drops(self):
        sim = Simulator()
        client_modem, server_modem = build_carrier(sim)
        a = GreEndpoint(client_modem, peer_address="100.64.0.20")
        a.close()
        assert not a.encapsulate(Packet(src="1.1.1.1", dst="2.2.2.2",
                                        protocol=PROTO_UDP, size=100))


class TestTunneledHost:
    def test_tcp_over_emulated_addresses(self):
        """A full TCP transfer between endpoints whose addresses the
        carrier network cannot route — exactly the paper's OVS setup."""
        sim = Simulator()
        client_modem, server_modem = build_carrier(sim)
        client_gre = GreEndpoint(client_modem, peer_address="100.64.0.20")
        server_gre = GreEndpoint(server_modem, peer_address="100.64.0.10")
        ue = TunneledHost(sim, "emulated-ue", "10.200.0.2", client_gre)
        server = TunneledHost(sim, "emulated-server", "52.9.0.10",
                              server_gre)

        received = [0]

        def accept(conn):
            conn.on_data = lambda n, m: received.__setitem__(
                0, received[0] + n)

        TcpListener(server, 80, accept)
        client = TcpConnection(ue, "52.9.0.10", 80)
        client.on_established = lambda: client.send(300_000)
        client.connect()
        sim.run(until=10.0)
        assert received[0] == 300_000

    def test_emulated_ip_change_over_same_carrier(self):
        """Changing the emulated address mid-run does not require any
        carrier cooperation — the tunnel just carries the new inner
        source, as the paper's emulation relies on."""
        sim = Simulator()
        client_modem, server_modem = build_carrier(sim)
        client_gre = GreEndpoint(client_modem, peer_address="100.64.0.20")
        server_gre = GreEndpoint(server_modem, peer_address="100.64.0.10")
        ue = TunneledHost(sim, "emulated-ue", "10.200.0.2", client_gre)
        server = TunneledHost(sim, "emulated-server", "52.9.0.10",
                              server_gre)
        seen_sources = []
        inner_log = server_gre.on_inner_packet

        def spy(packet):
            seen_sources.append(packet.src)
            inner_log(packet)

        server_gre.on_inner_packet = spy

        from repro.net import UdpSocket
        echo = UdpSocket(server, 7)
        sock = UdpSocket(ue, 9000)
        sock.send_to("52.9.0.10", 7, 100)
        sim.run(until=0.5)
        ue.set_address("10.201.0.7")  # emulated handover
        sock.send_to("52.9.0.10", 7, 100)
        sim.run(until=1.0)
        assert seen_sources == ["10.200.0.2", "10.201.0.7"]
