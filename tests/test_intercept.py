"""Tests for SAP-negotiated lawful intercept."""

import pytest

from repro.core.intercept import (
    EVENT_SESSION_END,
    EVENT_SESSION_START,
    EVENT_USAGE,
    LawfulInterceptFunction,
)
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.qos import QosCapabilities
from repro.net import Simulator


class TestLawfulInterceptFunction:
    def test_activation_and_records(self):
        li = LawfulInterceptFunction(operator="t1")
        li.activate("s-1", at=1.0, id_u_opaque="anon-9")
        assert li.is_active("s-1")
        li.record_usage("s-1", at=2.0, dl_bytes=1000, ul_bytes=100)
        li.deactivate("s-1", at=3.0)
        records = li.deliver("s-1")
        events = [r.event for r in records]
        assert events == [EVENT_SESSION_START, EVENT_USAGE,
                          EVENT_SESSION_END]
        assert records[0].detail["pseudonym"] == "anon-9"

    def test_inactive_sessions_not_recorded(self):
        li = LawfulInterceptFunction(operator="t1")
        li.record_usage("s-x", at=1.0, dl_bytes=10, ul_bytes=1)
        assert li.deliver() == []

    def test_deliver_all_clears_buffers(self):
        li = LawfulInterceptFunction(operator="t1")
        li.activate("a", 1.0, "p1")
        li.activate("b", 1.0, "p2")
        assert len(li.deliver()) == 2
        assert li.deliver() == []
        assert len(li.delivered) == 2

    def test_active_count(self):
        li = LawfulInterceptFunction(operator="t1")
        li.activate("a", 1.0, "p1")
        li.activate("b", 1.0, "p2")
        li.deactivate("a", 2.0)
        assert li.active_count == 1


class TestEndToEndIntercept:
    def test_mandated_subscriber_intercepted(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        # The build gives bTelcos LI-capable QoS? They default to no-LI;
        # grant the capability to site A.
        agw = net.sites["btelco-a"].agw
        agw.sap.config.qos_capabilities = QosCapabilities(
            supported_qcis=(1, 8, 9), supports_lawful_intercept=True)
        net.brokerd.mandate_intercept("alice")

        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        assert agw.li.active_count == 1
        records = agw.li.deliver()
        assert records and records[0].event == EVENT_SESSION_START
        # The intercept record carries only the pseudonym.
        assert "alice" not in records[0].detail["pseudonym"]

    def test_incapable_btelco_denied_for_mandated_subscriber(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        net.brokerd.mandate_intercept("alice")
        manager = MobilityManager(net)
        results = []
        manager.start("btelco-a")  # default caps: no LI support
        manager.ue.on_attach_done = results.append
        sim.run(until=1.0)
        assert results and not results[0].success
        assert "intercept" in results[0].cause

    def test_unmandated_subscriber_not_intercepted(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        agw = net.sites["btelco-a"].agw
        agw.sap.config.qos_capabilities = QosCapabilities(
            supported_qcis=(1, 8, 9), supports_lawful_intercept=True)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        assert agw.li.active_count == 0

    def test_lifted_mandate_stops_new_sessions(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        for site in net.sites.values():
            site.agw.sap.config.qos_capabilities = QosCapabilities(
                supported_qcis=(1, 8, 9), supports_lawful_intercept=True)
        net.brokerd.mandate_intercept("alice")
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert net.sites["btelco-a"].agw.li.active_count == 1
        net.brokerd.lift_intercept("alice")
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        assert net.sites["btelco-b"].agw.li.active_count == 0
