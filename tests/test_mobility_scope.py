"""Mobility-scoped grants (§4.2): broker-free re-attach, fallback and
failure recovery on the mobility path, and replay defense across a
broker shard failover."""

from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.net import Simulator


def _scoped_start(sim, net, telcos, start="btelco-a", ttl=300.0,
                  ue_class=None):
    manager = MobilityManager(net, ue_class=ue_class)
    manager.start(start)
    manager.ue.scope_request = {"telcos": list(telcos), "ttl": ttl}
    sim.run(until=sim.now + 2.0)
    return manager


def _auth_rpcs(brokerd):
    return brokerd.requests_approved + brokerd.requests_denied


class TestScopedReattach:
    def test_in_scope_switch_uses_zero_broker_rpcs(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = _scoped_start(sim, net, ("btelco-a", "btelco-b"))
        assert manager.ue.state == "ATTACHED"
        assert manager.ue.mobility_grant is not None

        before = _auth_rpcs(net.brokerd)
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)

        assert manager.ue.state == "ATTACHED"
        assert manager.current_site.name == "btelco-b"
        # The defining scoped-grant property: the handover never talked
        # to the broker's auth path.
        assert _auth_rpcs(net.brokerd) == before
        assert manager.ue.scoped_attaches == 1
        assert net.sites["btelco-b"].agw.scoped_attaches == 1

    def test_in_scope_switch_uses_zero_broker_rpcs_5g(self):
        from repro.core.btelco5g import CellBricksUe5G
        from repro.fivegc.network5g import build_cellbricks_network_5g

        sim = Simulator()
        net = build_cellbricks_network_5g(sim)
        manager = _scoped_start(sim, net, ("btelco-a", "btelco-b"),
                                ue_class=CellBricksUe5G)
        assert manager.ue.state == "REGISTERED"
        assert manager.ue.mobility_grant is not None

        before = _auth_rpcs(net.brokerd)
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)

        assert manager.ue.state == "REGISTERED"
        assert manager.current_site.name == "btelco-b"
        assert _auth_rpcs(net.brokerd) == before
        assert net.sites["btelco-b"].amf.scoped_attaches == 1

    def test_out_of_scope_switch_falls_back_to_full_auth(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = _scoped_start(sim, net, ("btelco-a",))
        assert manager.ue.mobility_grant is not None
        assert manager.ue.mobility_grant.token.telcos == ("btelco-a",)

        before = _auth_rpcs(net.brokerd)
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)

        # Not covered by the grant: a normal authReqU round-trip.
        assert manager.ue.state == "ATTACHED"
        assert _auth_rpcs(net.brokerd) == before + 1
        assert net.sites["btelco-b"].agw.scoped_attaches == 0

    def test_async_notice_repoints_revocation_cascade(self):
        """Billing/revocation continuity: the scope-local attach is
        reported asynchronously, so a later revocation cascades to the
        *new* serving bTelco even though the broker never saw an
        authReqT from it."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = _scoped_start(sim, net, ("btelco-a", "btelco-b"))
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)
        assert net.brokerd.scope_notices_accepted == 1

        detached = []
        manager.ue.on_detached = lambda: detached.append(sim.now)
        net.brokerd.revoke_subscriber("alice")
        sim.run(until=sim.now + 2.0)
        assert detached, "revocation never reached the scoped-attach site"
        assert manager.ue.state != "ATTACHED"


class TestFailedSwitchRecovery:
    def test_failed_switch_recovers_lte(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=sim.now + 2.0)
        assert manager.ue.state == "ATTACHED"

        net.brokerd.revoke_subscriber("alice")
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)

        assert manager.attach_failures == 1
        assert manager.detached
        # The satellite fix under test: a failed switch leaves
        # current_site naming the last site that actually held a
        # bearer, so recovery knows where to go back to.
        assert manager.current_site.name == "btelco-a"
        assert manager.target_site is None

        net.brokerd.sap.subscribers["alice"].suspended = False
        manager.reattach()
        sim.run(until=sim.now + 2.0)
        assert manager.ue.state == "ATTACHED"
        assert manager.current_site.name == "btelco-a"
        assert not manager.detached

    def test_failed_switch_recovers_5g(self):
        from repro.core.btelco5g import CellBricksUe5G
        from repro.fivegc.network5g import build_cellbricks_network_5g

        sim = Simulator()
        net = build_cellbricks_network_5g(sim)
        manager = MobilityManager(net, ue_class=CellBricksUe5G)
        manager.start("btelco-a")
        sim.run(until=sim.now + 2.0)
        assert manager.ue.state == "REGISTERED"

        net.brokerd.revoke_subscriber("alice")
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 2.0)

        assert manager.attach_failures == 1
        assert manager.detached
        assert manager.current_site.name == "btelco-a"
        assert manager.target_site is None

        net.brokerd.sap.subscribers["alice"].suspended = False
        manager.reattach()
        sim.run(until=sim.now + 2.0)
        assert manager.ue.state == "REGISTERED"
        assert not manager.detached

    def test_scoped_reattach_after_failed_switch_no_broker_rpc(self):
        """A switch that dies on a dark radio link must not burn the
        grant: recovery re-attaches to the old site scope-locally, with
        zero broker auth RPCs across the whole episode."""
        from repro.emulation.chaos import (ChaosMonkey, ChaosSchedule,
                                           outage)

        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = _scoped_start(sim, net, ("btelco-a", "btelco-b"))
        assert manager.ue.mobility_grant is not None

        monkey = ChaosMonkey(sim, net.links)
        monkey.arm(ChaosSchedule().add(
            outage(sim.now, 30.0, "btelco-b-sig-radio")))
        before = _auth_rpcs(net.brokerd)
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 15.0)

        assert manager.attach_failures == 1
        assert manager.detached
        assert manager.current_site.name == "btelco-a"
        assert manager.ue.mobility_grant is not None, \
            "a transport failure must not drop the grant"

        manager.reattach()
        sim.run(until=sim.now + 2.0)
        assert manager.ue.state == "ATTACHED"
        assert manager.current_site.name == "btelco-a"
        assert _auth_rpcs(net.brokerd) == before
        assert net.sites["btelco-a"].agw.scoped_attaches >= 1


class TestShardFailoverReplay:
    def test_replayed_counter_denied_across_failover(self):
        """The scoped-attach replay floor is shard state: it must be
        replicated to the warm replica so a promoted replica still
        denies an attacker replaying a counter the dead primary had
        already committed."""
        from repro.core.shardhost import deploy_shard_hosts

        sim = Simulator()
        net = build_cellbricks_network(
            sim, site_names=("s0", "s1", "s2"), seed=8)
        frontend = deploy_shard_hosts(net, num_shards=2)
        manager = MobilityManager(net)
        manager.start("s0")
        manager.ue.scope_request = {"telcos": ["s0", "s1", "s2"],
                                    "ttl": 300.0}
        sim.run(until=sim.now + 3.0)
        assert manager.ue.mobility_grant is not None

        manager.switch_to("s1")
        sim.run(until=sim.now + 3.0)
        assert manager.ue.scoped_attaches == 1
        assert net.brokerd.scope_notices_accepted == 1

        grant = manager.ue.mobility_grant
        sid = grant.session_id
        shard_id = frontend.ring.shard_for(frontend._session_owner[sid])
        state = frontend.states[shard_id]
        primary = state.hosts[state.primary_addr]
        replica = state.hosts[state.standby_addr]
        sim.run(until=sim.now + 0.5)  # replication flush
        committed = primary.sap.shards[0].scope_counters.get(sid)
        assert committed == 1
        assert replica.sap.shards[0].scope_counters.get(sid) == committed

        primary.crash()
        frontend.notify_activity()  # heartbeats idle-stop while quiet
        sim.run(until=sim.now + 3.0)
        assert state.status == "healthy"
        assert state.primary_addr == replica.host.address

        # Replay the committed counter from a third site the session
        # never touched: the promoted replica must refuse to advance.
        agw2 = net.sites["s2"].agw
        denied_before = net.brokerd.scope_notices_denied
        agw2._notify_scope_attach(grant.token, committed)
        sim.run(until=sim.now + 5.0)
        assert net.brokerd.scope_notices_denied == denied_before + 1
        assert agw2.scope_notice_nacks == 1
        promoted = state.hosts[state.primary_addr]
        assert promoted.scope_nacks >= 1
