"""Unit + property tests for verifiable billing and the reputation system."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.billing import (
    BillingVerifier,
    Meter,
    REPORTER_BTELCO,
    REPORTER_UE,
    TrafficReport,
    make_upload,
)
from repro.core.qos import QosInfo
from repro.core.reputation import ReputationSystem
from repro.core.sap import SapGrant
from repro.crypto import generate_keypair


@pytest.fixture(scope="module")
def keys():
    rng = random.Random(0xB111)
    return {
        "broker": generate_keypair(rng=rng),
        "ue": generate_keypair(rng=rng),
        "telco": generate_keypair(rng=rng),
    }


def make_grant(session_id="s-1"):
    return SapGrant(id_u="alice", id_u_opaque="anon-1", id_t="t1",
                    session_id=session_id, ss=b"s" * 32,
                    qos_info=QosInfo(), granted_at=0.0, expires_at=3600.0)


def make_verifier(keys, epsilon=0.05):
    verifier = BillingVerifier(broker_key=keys["broker"], epsilon=epsilon)
    grant = make_grant()
    verifier.open_session(grant,
                          ue_public_key=keys["ue"].public_key,
                          btelco_public_key=keys["telco"].public_key)
    return verifier, grant


def report(session="s-1", seq=0, dl=1_000_000, ul=100_000, loss=0.0):
    return TrafficReport(session_id=session, seq=seq, interval_start=0.0,
                         interval_end=30.0, ul_bytes=ul, dl_bytes=dl,
                         dl_loss_rate=loss)


def upload_pair(verifier, keys, ue_dl, t_dl, seq=0, loss=0.0, now=30.0):
    ue_up = make_upload(report(seq=seq, dl=ue_dl, loss=loss), REPORTER_UE,
                        keys["ue"], keys["broker"].public_key)
    t_up = make_upload(report(seq=seq, dl=t_dl), REPORTER_BTELCO,
                       keys["telco"], keys["broker"].public_key)
    assert verifier.ingest(ue_up, now=now)
    assert verifier.ingest(t_up, now=now)


class TestReportCrypto:
    def test_roundtrip_serialization(self):
        r = report()
        assert TrafficReport.from_bytes(r.to_bytes()) == r

    def test_upload_verifies_and_decrypts(self, keys):
        verifier, grant = make_verifier(keys)
        upload = make_upload(report(), REPORTER_UE, keys["ue"],
                             keys["broker"].public_key)
        assert verifier.ingest(upload, now=30.0)

    def test_wrong_signature_rejected(self, keys):
        verifier, grant = make_verifier(keys)
        mallory = generate_keypair(rng=random.Random(1))
        upload = make_upload(report(), REPORTER_UE, mallory,
                             keys["broker"].public_key)
        assert not verifier.ingest(upload, now=30.0)
        assert verifier.rejected_uploads == 1

    def test_unknown_session_rejected(self, keys):
        verifier, grant = make_verifier(keys)
        upload = make_upload(report(session="nope"), REPORTER_UE,
                             keys["ue"], keys["broker"].public_key)
        assert not verifier.ingest(upload, now=30.0)

    def test_report_not_readable_by_btelco(self, keys):
        """Reports are sealed to the broker: only it can decrypt."""
        from repro.crypto import CryptoError
        upload = make_upload(report(), REPORTER_UE, keys["ue"],
                             keys["broker"].public_key)
        with pytest.raises(CryptoError):
            keys["telco"].decrypt(upload.blob)


class TestCrossCheck:
    def test_honest_reports_match(self, keys):
        verifier, grant = make_verifier(keys)
        upload_pair(verifier, keys, ue_dl=1_000_000, t_dl=1_000_000)
        ledger = verifier.sessions["s-1"]
        assert ledger.checked_pairs == 1
        assert ledger.mismatches == 0
        assert verifier.reputation.btelco_score("t1") == 1.0

    def test_small_discrepancy_tolerated(self, keys):
        verifier, grant = make_verifier(keys, epsilon=0.05)
        upload_pair(verifier, keys, ue_dl=980_000, t_dl=1_000_000)
        assert verifier.sessions["s-1"].mismatches == 0

    def test_btelco_overcount_flagged(self, keys):
        verifier, grant = make_verifier(keys, epsilon=0.05)
        upload_pair(verifier, keys, ue_dl=1_000_000, t_dl=1_500_000)
        ledger = verifier.sessions["s-1"]
        assert ledger.mismatches == 1
        assert verifier.reputation.mismatch_count("t1") == 1
        assert verifier.reputation.btelco_score("t1") < 1.0

    def test_loss_scales_tolerance(self, keys):
        """10% radio loss legitimately explains a 10%-ish DL gap."""
        verifier, grant = make_verifier(keys, epsilon=0.05)
        upload_pair(verifier, keys, ue_dl=880_000, t_dl=1_000_000, loss=0.10)
        assert verifier.sessions["s-1"].mismatches == 0

    def test_ue_overreport_flags_ue(self, keys):
        verifier, grant = make_verifier(keys)
        upload_pair(verifier, keys, ue_dl=2_000_000, t_dl=1_000_000)
        assert verifier.reputation.ue_suspects.get("alice", 0) == 1

    def test_settlement_uses_ue_reports(self, keys):
        verifier, grant = make_verifier(keys)
        upload_pair(verifier, keys, ue_dl=1_000_000, t_dl=1_000_000, seq=0)
        upload_pair(verifier, keys, ue_dl=2_000_000, t_dl=2_000_000, seq=1)
        invoice = verifier.settle("s-1")
        assert invoice.dl_bytes == 3_000_000
        assert not invoice.disputed
        assert invoice.amount > 0

    def test_disputed_invoice_marked(self, keys):
        verifier, grant = make_verifier(keys)
        upload_pair(verifier, keys, ue_dl=1_000_000, t_dl=5_000_000)
        assert verifier.settle("s-1").disputed

    @given(fraud=st.floats(min_value=1.3, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_sustained_overcount_always_detected(self, keys, fraud):
        verifier, grant = make_verifier(keys, epsilon=0.05)
        honest = 1_000_000
        upload_pair(verifier, keys, ue_dl=honest, t_dl=int(honest * fraud))
        assert verifier.sessions["s-1"].mismatches == 1


class TestReputationSystem:
    def test_fresh_party_is_acceptable(self):
        rep = ReputationSystem()
        assert rep.btelco_acceptable("new-telco")
        assert rep.btelco_score("new-telco") == 1.0

    def test_score_declines_with_mismatches(self):
        rep = ReputationSystem()
        scores = []
        for i in range(6):
            rep.record_mismatch("t1", "s", i, degree=2.0, at=float(i))
            scores.append(rep.btelco_score("t1"))
        assert scores == sorted(scores, reverse=True)
        assert not rep.btelco_acceptable("t1")

    def test_ok_history_buffers_occasional_mismatch(self):
        rep = ReputationSystem(acceptance_threshold=0.8)
        for _ in range(50):
            rep.record_ok("t1")
        rep.record_mismatch("t1", "s", 0, degree=1.5, at=1.0)
        assert rep.btelco_acceptable("t1")

    def test_degree_weights_mismatches(self):
        rep = ReputationSystem()
        rep.record_mismatch("small", "s", 0, degree=1.0, at=0.0)
        rep.record_mismatch("large", "s", 0, degree=8.0, at=0.0)
        assert rep.btelco_score("large") < rep.btelco_score("small")

    def test_degree_weight_capped(self):
        rep = ReputationSystem()
        rep.record_mismatch("t1", "s", 0, degree=1e9, at=0.0)
        assert rep.btelco_score("t1") > 0.0  # one event can't zero it

    def test_ue_suspect_list_threshold(self):
        rep = ReputationSystem(suspect_after=3)
        for _ in range(2):
            rep.flag_ue("alice")
        assert not rep.ue_suspected("alice")
        rep.flag_ue("alice")
        assert rep.ue_suspected("alice")


class TestMeter:
    def test_meter_accumulates_and_resets(self, keys):
        meter = Meter(session_id="s-1", reporter=REPORTER_UE,
                      key=keys["ue"],
                      broker_public_key=keys["broker"].public_key)
        meter.record_dl(5000)
        meter.record_dl(3000)
        meter.record_ul(1000)
        upload = meter.emit(now=30.0)
        verifier, grant = make_verifier(keys)
        assert verifier.ingest(upload, now=30.0)
        stored = verifier.sessions["s-1"].ue_reports[0]
        assert stored.dl_bytes == 8000
        assert stored.ul_bytes == 1000
        # Counters reset for the next interval.
        assert meter.dl_bytes == 0

    def test_meter_sequences_reports(self, keys):
        meter = Meter(session_id="s-1", reporter=REPORTER_UE,
                      key=keys["ue"],
                      broker_public_key=keys["broker"].public_key)
        first = meter.emit(now=30.0)
        second = meter.emit(now=60.0)
        assert first.seq == 0 and second.seq == 1

    def test_meter_loss_rate(self, keys):
        meter = Meter(session_id="s-1", reporter=REPORTER_UE,
                      key=keys["ue"],
                      broker_public_key=keys["broker"].public_key)
        for _ in range(90):
            meter.record_dl(1000)
        meter.record_dl_loss(10)
        upload = meter.emit(now=30.0)
        verifier, grant = make_verifier(keys)
        verifier.ingest(upload, now=30.0)
        assert verifier.sessions["s-1"].ue_reports[0].dl_loss_rate == \
            pytest.approx(0.1)

    def test_fraudulent_meter_scales_values(self, keys):
        """The fraud knob used by the billing experiments."""
        meter = Meter(session_id="s-1", reporter=REPORTER_BTELCO,
                      key=keys["telco"],
                      broker_public_key=keys["broker"].public_key,
                      fraud_factor=1.5)
        meter.record_dl(1_000_000)
        upload = meter.emit(now=30.0)
        verifier, grant = make_verifier(keys)
        verifier.ingest(upload, now=30.0)
        assert verifier.sessions["s-1"].btelco_reports[0].dl_bytes == 1_500_000
