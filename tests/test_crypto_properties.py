"""Property-based tests for the crypto substrate (hypothesis)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    CryptoError,
    IntegrityError,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    open_sealed,
    seal,
    sha256,
)
from repro.crypto.keypool import pooled_keypair

KEY = pooled_keypair(950)
OTHER = pooled_keypair(951)


class TestRsaProperties:
    @given(st.binary(min_size=0, max_size=3000))
    @settings(max_examples=15, deadline=None)
    def test_hybrid_roundtrip(self, plaintext):
        ciphertext = KEY.public_key.encrypt(plaintext)
        assert KEY.decrypt(ciphertext) == plaintext

    @given(st.binary(min_size=1, max_size=500))
    @settings(max_examples=15, deadline=None)
    def test_wrong_key_never_decrypts(self, plaintext):
        ciphertext = KEY.public_key.encrypt(plaintext)
        with pytest.raises(CryptoError):
            OTHER.decrypt(ciphertext)

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=15, deadline=None)
    def test_signature_roundtrip(self, message):
        assert KEY.public_key.verify(message, KEY.sign(message))

    @given(st.binary(min_size=1, max_size=200),
           st.integers(min_value=0, max_value=127))
    @settings(max_examples=15, deadline=None)
    def test_bitflip_breaks_signature(self, message, bit):
        signature = bytearray(KEY.sign(message))
        signature[bit % len(signature)] ^= 1 << (bit % 8)
        assert not KEY.public_key.verify(message, bytes(signature))

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=10, deadline=None)
    def test_signature_not_valid_for_other_message(self, message):
        signature = KEY.sign(message)
        assert not KEY.public_key.verify(message + b"x", signature)


class TestAeadProperties:
    @given(st.binary(max_size=4000), st.binary(max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_with_associated_data(self, plaintext, aad):
        key = sha256(b"aead")
        assert open_sealed(key, seal(key, plaintext, aad), aad) == plaintext

    @given(st.binary(max_size=500), st.integers(min_value=0))
    @settings(max_examples=25, deadline=None)
    def test_any_bitflip_detected(self, plaintext, position):
        key = sha256(b"aead")
        sealed = bytearray(seal(key, plaintext))
        sealed[position % len(sealed)] ^= 0x01
        with pytest.raises(IntegrityError):
            open_sealed(key, bytes(sealed))

    @given(st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_ciphertexts_never_repeat(self, plaintext):
        key = sha256(b"aead")
        assert seal(key, plaintext) != seal(key, plaintext)


class TestKdfProperties:
    @given(st.binary(min_size=1, max_size=64),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=25, deadline=None)
    def test_expand_prefix_property(self, ikm, length):
        """HKDF output of length n is a prefix of the length-(n+k) output
        (RFC 5869 structure)."""
        prk = hkdf_extract(b"salt", ikm)
        short = hkdf_expand(prk, b"info", length)
        longer = hkdf_expand(prk, b"info", min(length + 16, 255 * 32))
        assert longer[:length] == short

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_salt_separates(self, ikm):
        assert hkdf(ikm, salt=b"a") != hkdf(ikm, salt=b"b")
