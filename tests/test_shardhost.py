"""Distributed broker shards: network-attached shard hosts behind the
frontend hash ring.

Covers the robustness acceptance bars: routing + replication on the
happy path, failover with the replay window carried by the replica,
degraded-mode fast-fail (retryable) when a whole shard is dark plus
recovery after a host rejoins, live rebalance over real links moving
the replay window with the subscriber, rebalance during the in-process
batched pipeline (no lost or double-served request), UE backoff/retry
on retryable denials on both RATs, and byte-identical frontend metrics
under a fixed seed.
"""

import json

import pytest

from repro.core.messages import (
    BrokerAuthRequest,
    BrokerAuthResponse,
    DenialCause,
)
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.sap import UeSap, UeSapCredentials
from repro.core.shardhost import deploy_shard_hosts
from repro.lte.signaling import SignalingNode
from repro.net import Host, Link, Simulator
from repro.obs import Obs


def build_distributed(num_shards=2, spares=0,
                      site_names=("btelco-a", "btelco-b")):
    sim = Simulator()
    net = build_cellbricks_network(sim, site_names=site_names)
    frontend = deploy_shard_hosts(net, num_shards=num_shards,
                                  spares=spares)
    return sim, net, frontend


def craft_request(net, id_u, site_name="btelco-a",
                  lawful_intercept=False):
    """A fresh authReqU for ``id_u`` (enrolled with alice's keypair),
    countersigned by ``site_name``'s bTelco."""
    creds = net.credentials
    ue = UeSap(UeSapCredentials(
        id_u=id_u, id_b=creds.id_b, ue_key=creds.ue_key,
        broker_public_key=creds.broker_public_key))
    req_u = ue.craft_request(site_name)
    return req_u, net.sites[site_name].agw.sap.augment_request(
        req_u, lawful_intercept=lawful_intercept)


class BrokerProbe:
    """A bare signaling endpoint that submits auth requests straight to
    the broker daemon and records every response."""

    def __init__(self, net, address="52.23.0.9"):
        sim = net.sim
        self.host = Host(sim, "probe", address=address)
        self.node = SignalingNode(self.host, name="probe")
        link = Link(sim, "probe-broker", self.host, net.broker_host,
                    1e9, 0.001)
        self.host.add_route(
            net.broker_host.address.rsplit(".", 1)[0], link)
        net.broker_host.add_route(address.rsplit(".", 1)[0], link)
        self.broker_ip = net.broker_host.address
        self.responses = []
        self.node.on(BrokerAuthResponse,
                     lambda src, resp: self.responses.append(resp))
        self._token = 0

    def submit(self, auth_req_t):
        self._token += 1
        self.node.send_request(
            self.broker_ip,
            BrokerAuthRequest(auth_req_t=auth_req_t,
                              reply_token=self._token),
            size=auth_req_t.wire_size, timeout=0.5, max_attempts=5)


def owning_host(frontend, id_u):
    sid = frontend.ring.shard_for(id_u)
    st = frontend.states[sid]
    return sid, st.hosts[st.primary_addr], st.hosts[st.standby_addr]


class TestRoutingAndReplication:
    def test_attach_served_by_owning_shard_host(self):
        sim, net, frontend = build_distributed()
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        assert net.brokerd.requests_approved == 1
        sid, primary, _ = owning_host(frontend, "alice")
        assert primary.auths_served == 1
        for other_sid in frontend.active_ids:
            if other_sid != sid:
                st = frontend.states[other_sid]
                assert st.hosts[st.primary_addr].auths_served == 0

    def test_replication_streams_replay_window_to_standby(self):
        sim, net, frontend = build_distributed()
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        _, primary, standby = owning_host(frontend, "alice")
        assert primary.repl_batches_sent >= 1
        assert standby._applied_seq >= 1
        # The standby holds the nonce, the grant, and the cached
        # response for the auth its primary just served.
        assert len(standby.sap.shards[0].seen_nonces) == 1
        assert len(standby.sap.shards[0].grants) == 1
        assert len(standby.sap._response_cache) == 1

    def test_duplicate_request_served_from_idempotency_cache(self):
        sim, net, frontend = build_distributed()
        probe = BrokerProbe(net)
        _, req_t = craft_request(net, "alice")
        sim.schedule(0.1, probe.submit, req_t)
        sim.schedule(0.4, probe.submit, req_t)
        sim.run(until=1.5)
        assert len(probe.responses) == 2
        assert all(resp.approved for resp in probe.responses)
        _, primary, _ = owning_host(frontend, "alice")
        assert primary.auths_served == 1
        assert primary.cache_serves == 1
        # One billing ledger: the cached re-serve must not reopen it.
        assert len(net.brokerd.billing.sessions) == 1

    def test_distributed_stats_exposed_via_brokerd(self):
        sim, net, frontend = build_distributed(spares=1)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        stats = net.brokerd.stats()["distributed"]
        assert stats["active_shards"] == [0, 1]
        assert stats["spare_shards"] == [2]
        assert set(stats["shard_status"]) == {"0", "1", "2"}
        assert stats["failovers_total"] == 0
        assert "hosts" in stats and len(stats["hosts"]) == 6


class TestFailover:
    def test_crash_promotes_replica_and_attach_recovers(self):
        sim, net, frontend = build_distributed()
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        sid, primary, _ = owning_host(frontend, "alice")
        primary.crash()
        sim.run(until=3.0)
        st = frontend.states[sid]
        assert frontend.failovers_total.value == 1
        assert st.status == "healthy"
        assert len(frontend.failover_log) == 1
        assert frontend.failover_log[0]["shard"] == sid
        # The promoted host is the old replica, now serving as primary.
        promoted = st.hosts[st.primary_addr]
        assert promoted.promotions == 1
        manager.switch_to("btelco-b")
        sim.run(until=4.0)
        assert manager.ue.state == "ATTACHED"
        assert promoted.auths_served >= 1

    def test_replay_denied_across_failover(self):
        sim, net, frontend = build_distributed()
        probe = BrokerProbe(net)
        req_u, req_t = craft_request(net, "alice")
        sim.schedule(0.1, probe.submit, req_t)
        sim.run(until=0.5)
        assert probe.responses and probe.responses[0].approved
        _, primary, _ = owning_host(frontend, "alice")
        primary.crash()
        sim.run(until=2.5)   # detection + promotion complete
        # Same single-use nonce re-signed into a different envelope (LI
        # flag flips the digest): the idempotency cache cannot serve it,
        # so the promoted replica must consult its replay window.
        tampered = net.sites["btelco-a"].agw.sap.augment_request(
            req_u, lawful_intercept=True)
        probe.submit(tampered)
        sim.run(until=3.5)
        final = probe.responses[-1]
        assert not final.approved
        assert "replay" in final.cause


class TestDegradedMode:
    def test_total_shard_loss_fast_fails_retryable_then_recovers(self):
        sim, net, frontend = build_distributed()
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=0.5)
        sid, primary, standby = owning_host(frontend, "alice")
        sim.schedule(1.0, primary.crash)
        sim.schedule(1.0, standby.crash)
        probe = BrokerProbe(net)
        _, fresh = craft_request(net, "alice")
        sim.schedule(1.1, probe.submit, fresh)
        sim.run(until=9.0)
        # The whole shard is dark: the fresh auth fast-fails with a
        # retryable degraded denial instead of timing out silently.
        assert probe.responses
        denial = probe.responses[-1]
        assert not denial.approved
        assert denial.retryable
        assert denial.cause.startswith(DenialCause.DEGRADED.value)
        assert frontend.degraded_denials.value >= 1
        assert frontend.forward_giveups.value >= 1
        assert frontend.states[sid].status != "healthy"
        # One host rejoins (empty): the frontend re-provisions it,
        # promotes it, and fresh auths flow again.
        standby.restart()
        sim.run(until=13.0)
        assert frontend.states[sid].status == "healthy"
        _, again = craft_request(net, "alice")
        probe.submit(again)
        sim.run(until=14.0)
        assert probe.responses[-1].approved


class TestNetworkRebalance:
    def test_scale_out_moves_replay_window_over_the_wire(self):
        sim, net, frontend = build_distributed(spares=1)
        ids = [f"sub-{i:02d}" for i in range(12)]
        for id_u in ids:
            net.brokerd.enroll_subscriber(
                id_u, net.credentials.ue_key.public_key)
        probe = BrokerProbe(net)
        req_us = {}
        for index, id_u in enumerate(ids):
            req_u, req_t = craft_request(net, id_u)
            req_us[id_u] = req_u
            sim.schedule(0.1 + 0.02 * index, probe.submit, req_t)
        sim.run(until=1.5)
        assert len(probe.responses) == len(ids)
        assert all(resp.approved for resp in probe.responses)
        before = {id_u: frontend.ring.shard_for(id_u) for id_u in ids}
        joiner = frontend.add_shard()
        sim.run(until=4.0)
        assert frontend._rebalance is None   # committed
        assert frontend.rebalances_total.value == 1
        assert joiner in frontend.active_ids
        entry = frontend.rebalance_log[0]
        assert entry["moved"] >= 1
        moved = [id_u for id_u in ids
                 if frontend.ring.shard_for(id_u) != before[id_u]]
        assert moved and len(moved) <= entry["moved"]
        # The moved subscriber's single-use nonce travelled with it:
        # replaying the pre-move authReqU in a fresh envelope is denied
        # by the *new* owner host.
        victim = moved[0]
        tampered = net.sites["btelco-a"].agw.sap.augment_request(
            req_us[victim], lawful_intercept=True)
        probe.submit(tampered)
        sim.run(until=5.0)
        final = probe.responses[-1]
        assert not final.approved and "replay" in final.cause
        # And a genuinely fresh auth for the moved subscriber is served
        # by the new owner.
        new_sid, new_primary, _ = owning_host(frontend, victim)
        served_before = new_primary.auths_served
        _, fresh = craft_request(net, victim)
        probe.submit(fresh)
        sim.run(until=6.0)
        assert probe.responses[-1].approved
        assert new_primary.auths_served == served_before + 1


class TestPipelineRebalance:
    def test_midbatch_rebalance_neither_loses_nor_double_serves(self):
        """An in-process shard-count change landing while a pipeline
        batch is parked in the window must not lose or double-serve any
        request in the batch."""
        sim = Simulator()
        net = build_cellbricks_network(sim, site_names=("btelco-a",))
        net.brokerd.configure_pipeline(enabled=True, shards=4,
                                       batch_window=0.05)
        ids = [f"pipe-{i:02d}" for i in range(16)]
        for id_u in ids:
            net.brokerd.enroll_subscriber(
                id_u, net.credentials.ue_key.public_key)
        probe = BrokerProbe(net)
        for index, id_u in enumerate(ids):
            _, req_t = craft_request(net, id_u)
            sim.schedule(0.1 + 0.001 * index, probe.submit, req_t)
        # All 16 arrive inside the 50 ms window; the rebalance fires
        # mid-window, before the batch flushes.
        sim.schedule(0.13, net.brokerd.sap.set_shard_count, 6)
        sim.run(until=2.0)
        brokerd = net.brokerd
        assert len(probe.responses) == len(ids)
        assert all(resp.approved for resp in probe.responses)
        assert brokerd.requests_approved == len(ids)
        assert brokerd.requests_denied == 0
        stats = brokerd.stats()
        assert stats["attach_ok"] == len(ids)
        assert stats["dup_requests_served"] == 0
        assert stats["num_shards"] == 6
        assert len(brokerd.billing.sessions) == len(ids)
        # Every grant lives on its owner shard under the new layout.
        sap = brokerd.sap
        for shard in sap.shards:
            for grant in shard.grants.values():
                assert sap.shard_of(grant.id_u).shard_id == shard.shard_id


def _run_retry_scenario(rat, *, deny_first, retryable, cause):
    """One attach against a broker whose auth handler denies the first
    ``deny_first`` requests with the given cause before recovering."""
    sim = Simulator()
    if rat == "5g":
        from repro.core.btelco5g import CellBricksUe5G as UeClass
        from repro.fivegc.network5g import \
            build_cellbricks_network_5g as build
    else:
        from repro.core.mobility import build_cellbricks_network as build
        from repro.core.ue_agent import CellBricksUe as UeClass
    net = build(sim, site_names=("btelco-a",))
    site = net.sites["btelco-a"]
    ue = UeClass(net.ue_host, site.enb_address, net.credentials,
                 target_id_t=site.name)
    results = []
    ue.on_attach_done = results.append
    brokerd = net.brokerd
    original = brokerd._handle_auth_request
    denials = {"count": 0}

    def flaky(src_ip, request):
        if denials["count"] < deny_first:
            denials["count"] += 1
            brokerd.requests_denied += 1
            brokerd.send(src_ip, BrokerAuthResponse(
                approved=False, cause=cause, retryable=retryable,
                reply_token=request.reply_token), size=96)
            return
        original(src_ip, request)

    brokerd.on(BrokerAuthRequest, flaky)
    ue.attach()
    sim.run(until=10.0)
    return net, ue, results, denials


class TestRetryableDenialBackoff:
    """Satellite: retryable vs terminal denial causes end-to-end — the
    UE backs off and retries only on retryable ones, on both RATs."""

    @pytest.mark.parametrize("rat", ["lte", "5g"])
    def test_retryable_denial_backs_off_and_recovers(self, rat):
        net, ue, results, denials = _run_retry_scenario(
            rat, deny_first=2, retryable=True,
            cause=f"{DenialCause.DEGRADED.value}: shard 0 unavailable")
        assert denials["count"] == 2
        assert ue.retryable_rejects == 2
        assert results and results[-1].success
        assert net.brokerd.requests_approved == 1

    @pytest.mark.parametrize("rat", ["lte", "5g"])
    def test_terminal_denial_fails_without_retry(self, rat):
        net, ue, results, denials = _run_retry_scenario(
            rat, deny_first=99, retryable=False,
            cause=f"{DenialCause.POLICY.value}: reputation below "
                  f"threshold")
        assert results and not results[0].success
        assert ue.retryable_rejects == 0
        # Exactly one denial: the UE treated it as terminal.
        assert denials["count"] == 1
        assert net.brokerd.requests_approved == 0


class TestBrokerHaDrill:
    def test_lte_drill_meets_all_gates(self):
        from repro.testbed.broker_ha import RECOVERY_BOUND_S, run_cell
        cell = run_cell("lte", attaches=60, seed=11)
        assert cell["success_rate"] >= 0.99
        assert cell["unauthorized_session_seconds"] == 0.0
        assert cell["failovers_total"] >= 2
        assert cell["replay_denied_across_failover"], cell["replay_cause"]
        assert cell["recovery_s"]
        assert max(cell["recovery_s"]) <= RECOVERY_BOUND_S
        assert cell["rebalances_total"] == 1


class TestFrontendMetricsDeterminism:
    """Satellite: routing metrics are registered, exported through the
    obs merge, and byte-identical under a fixed seed."""

    def _snapshot(self):
        from repro.testbed.broker_ha import run_cell
        obs = Obs(tracing=False)
        run_cell("lte", attaches=40, seed=5, obs=obs)
        return obs.metrics.snapshot()

    def test_metrics_registered_exported_and_byte_identical(self):
        first = self._snapshot()
        names = set(first)
        for sid in range(3):   # 2 active shards + 1 spare
            assert f"broker.shard_health{{shard={sid}}}" in names
        for counter in ("broker.failovers_total",
                        "broker.handoff_chunks_retried",
                        "broker.degraded_denials",
                        "broker.parked_attaches",
                        "broker.forward_giveups",
                        "broker.rebalances_total",
                        "broker.resyncs_total"):
            assert counter in names
        assert first["broker.failovers_total"] >= 2
        second = self._snapshot()
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(second, sort_keys=True)
