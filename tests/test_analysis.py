"""Unit + property tests for statistics helpers and the E-model MOS."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    mean,
    median,
    mos_from_network_stats,
    percentile,
    r_factor,
    r_to_mos,
    slowdown_percent,
    stddev,
    timeseries_rates,
)
from repro.analysis.mos import delay_impairment, loss_impairment


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_percentile_basics(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_percentile_interpolates(self):
        assert percentile([1, 2], 50) == pytest.approx(1.5)

    def test_percentile_single_value(self):
        assert percentile([7], 99) == 7

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_median_matches_p50(self):
        values = [5, 1, 9, 3, 7]
        assert median(values) == percentile(values, 50)

    def test_stddev(self):
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([1]) == 0.0
        assert stddev([0, 2]) == pytest.approx(1.0)

    def test_slowdown_direction(self):
        # baseline 100, measured 97 -> 3% slower (worse).
        assert slowdown_percent(100, 97) == pytest.approx(3.0)
        # measured better than baseline -> negative slowdown.
        assert slowdown_percent(100, 103) == pytest.approx(-3.0)
        assert slowdown_percent(0, 5) == 0.0

    def test_timeseries_rates(self):
        samples = [(0.5, 125_000), (1.5, 250_000)]
        rates = timeseries_rates(samples, 1.0, 2.0)
        assert rates == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_timeseries_rates_ignores_out_of_range(self):
        rates = timeseries_rates([(5.0, 1000)], 1.0, 2.0)
        assert sum(rates) == 0.0

    def test_timeseries_rates_invalid_bin(self):
        with pytest.raises(ValueError):
            timeseries_rates([], 0, 10)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestMos:
    def test_perfect_call_near_max(self):
        assert mos_from_network_stats(20, 0, 0.0) == pytest.approx(4.4, abs=0.1)

    def test_loss_degrades_mos(self):
        clean = mos_from_network_stats(25, 1, 0.0)
        lossy = mos_from_network_stats(25, 1, 0.05)
        very_lossy = mos_from_network_stats(25, 1, 0.20)
        assert clean > lossy > very_lossy

    def test_delay_degrades_mos(self):
        assert mos_from_network_stats(20, 0, 0) > \
            mos_from_network_stats(300, 0, 0)

    def test_jitter_degrades_mos(self):
        assert mos_from_network_stats(100, 0, 0) > \
            mos_from_network_stats(100, 80, 0)

    def test_delay_impairment_kink_at_177ms(self):
        below = delay_impairment(170)
        above = delay_impairment(190)
        slope_below = delay_impairment(171) - delay_impairment(170)
        slope_above = delay_impairment(191) - delay_impairment(190)
        assert above > below
        assert slope_above > slope_below

    def test_loss_impairment_monotone(self):
        values = [loss_impairment(p / 100) for p in range(0, 50, 5)]
        assert values == sorted(values)

    def test_r_factor_bounds(self):
        assert 0 <= r_factor(1000, 1.0) <= 100
        assert r_factor(0, 0.0) == pytest.approx(93.2)

    def test_r_to_mos_anchors(self):
        assert r_to_mos(0) == 1.0
        assert r_to_mos(100) == 4.5
        # R=93.2 (clean G.711) ~ MOS 4.4.
        assert r_to_mos(93.2) == pytest.approx(4.41, abs=0.03)

    @given(st.floats(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_mos_in_valid_range(self, r):
        assert 1.0 <= r_to_mos(r) <= 4.5

    @given(delay=st.floats(min_value=0, max_value=500),
           jitter=st.floats(min_value=0, max_value=100),
           loss=st.floats(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_mos_total_function(self, delay, jitter, loss):
        mos = mos_from_network_stats(delay, jitter, loss)
        assert 1.0 <= mos <= 4.5
        assert not math.isnan(mos)
