"""Multi-tenancy tests: one bTelco cell serving several brokers' users.

"bTelcos are inherently multi-tenant (that is, a single bTelco cell site
can support multiple brokers)" (§3.1): several UEs, enrolled with
*different* brokers, attach to the same bTelco and share its radio and
its PGW, each under its own broker-assigned QoS.
"""

import pytest

from repro.core import (
    Brokerd,
    CellBricksAgw,
    CellBricksUe,
    QosCapabilities,
    QosInfo,
    UeSapCredentials,
)
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte import ENodeB
from repro.net import Host, Link, Simulator

SIG_BW = 1e9


def build_shared_cell(broker_count=2, ues_per_broker=2):
    """One bTelco site; N brokers each with M subscribers."""
    sim = Simulator()
    ca = CertificateAuthority(key=pooled_keypair(860))

    enb_host = Host(sim, "enb", address="10.250.0.1")
    agw_host = Host(sim, "agw", address="10.251.0.1")
    backhaul = Link(sim, "backhaul", enb_host, agw_host,
                    bandwidth_bps=SIG_BW, delay_s=0.00015)
    enb_host.add_route("10.251.0", backhaul)
    agw_host.add_route("10.250.0", backhaul)

    telco_key = pooled_keypair(861)
    certificate = ca.issue("shared-cell", "btelco", telco_key.public_key)
    agw = CellBricksAgw(agw_host, broker_ip="", id_t="shared-cell",
                        key=telco_key, certificate=certificate,
                        ca_public_key=ca.public_key,
                        qos_capabilities=QosCapabilities(
                            supported_qcis=(8, 9)))
    enb = ENodeB(enb_host, agw_ip=agw_host.address)

    brokers = []
    ues = []
    for b in range(broker_count):
        broker_host = Host(sim, f"broker{b}", address=f"52.{30 + b}.0.1")
        link = Link(sim, f"broker{b}-link", agw_host, broker_host,
                    bandwidth_bps=SIG_BW, delay_s=0.0025)
        agw_host.add_route(f"52.{30 + b}.0", link)
        broker_host.add_route("10.251.0", link)
        brokerd = Brokerd(broker_host, id_b=f"broker-{b}",
                          ca_public_key=ca.public_key,
                          key=pooled_keypair(862 + b))
        agw.trust_broker(f"broker-{b}", brokerd.public_key,
                         endpoint_ip=broker_host.address)
        brokers.append(brokerd)
        for u in range(ues_per_broker):
            index = b * ues_per_broker + u
            ue_host = Host(sim, f"ue{index}",
                           address=f"10.2{20 + index}.0.2")
            radio = Link(sim, f"radio{index}", ue_host, enb_host,
                         bandwidth_bps=SIG_BW, delay_s=0.0001)
            enb_host.add_route(f"10.2{20 + index}.0", radio)
            ue_key = pooled_keypair(870 + index)
            subscriber = f"sub-{b}-{u}"
            brokerd.enroll_subscriber(subscriber, ue_key.public_key)
            credentials = UeSapCredentials(
                id_u=subscriber, id_b=f"broker-{b}", ue_key=ue_key,
                broker_public_key=brokerd.public_key)
            ue = CellBricksUe(ue_host, enb_host.address, credentials,
                              target_id_t="shared-cell",
                              name=f"ue-{index}")
            ues.append((brokerd, ue))
    return sim, agw, enb, brokers, ues


class TestSharedCell:
    def test_users_of_multiple_brokers_attach_to_one_cell(self):
        sim, agw, enb, brokers, ues = build_shared_cell()
        results = []
        for offset, (brokerd, ue) in enumerate(ues):
            ue.on_attach_done = results.append
            sim.schedule(0.01 * offset, ue.attach)
        sim.run(until=3.0)
        assert len(results) == len(ues)
        assert all(r.success for r in results)
        # All four UEs hold addresses from the one shared cell's pool.
        assert agw.spgw.active_count == len(ues)
        ips = {r.ue_ip for r in results}
        assert len(ips) == len(ues)
        assert all(ip.startswith("10.128.0.") for ip in ips)
        # Each broker authorized exactly its own subscribers.
        for brokerd in brokers:
            assert brokerd.requests_approved == 2

    def test_per_broker_qos_applied_on_shared_cell(self):
        sim, agw, enb, brokers, ues = build_shared_cell()
        # Broker 0 sells premium (QCI 8 / 50 Mbps), broker 1 budget.
        for subscriber in brokers[0].sap.subscribers.values():
            subscriber.qos_plan = QosInfo(qci=8, ambr_dl_bps=50e6,
                                          ambr_ul_bps=20e6)
        for subscriber in brokers[1].sap.subscribers.values():
            subscriber.qos_plan = QosInfo(qci=9, ambr_dl_bps=2e6,
                                          ambr_ul_bps=1e6)
        for offset, (brokerd, ue) in enumerate(ues):
            sim.schedule(0.01 * offset, ue.attach)
        sim.run(until=3.0)
        qcis = sorted(bearer.qci for bearer in agw.spgw.bearers.values())
        assert qcis == [8, 8, 9, 9]
        ambrs = sorted(bearer.ambr_dl_bps
                       for bearer in agw.spgw.bearers.values())
        assert ambrs == [2e6, 2e6, 50e6, 50e6]
