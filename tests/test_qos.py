"""Unit tests for the qosCap/qosInfo negotiation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qos import (
    QCI_TABLE,
    QosCapabilities,
    QosError,
    QosInfo,
    select_qos,
)


class TestQosInfo:
    def test_defaults_valid(self):
        info = QosInfo()
        assert info.qci in QCI_TABLE

    def test_unknown_qci_rejected(self):
        with pytest.raises(QosError):
            QosInfo(qci=3)

    def test_nonpositive_ambr_rejected(self):
        with pytest.raises(QosError):
            QosInfo(ambr_dl_bps=0)
        with pytest.raises(QosError):
            QosInfo(ambr_ul_bps=-1)

    def test_arp_range(self):
        QosInfo(arp_priority=1)
        QosInfo(arp_priority=15)
        with pytest.raises(QosError):
            QosInfo(arp_priority=0)
        with pytest.raises(QosError):
            QosInfo(arp_priority=16)


class TestQosCapabilities:
    def test_can_satisfy(self):
        caps = QosCapabilities(supported_qcis=(8, 9),
                               max_ambr_dl_bps=10e6, max_ambr_ul_bps=5e6)
        assert caps.can_satisfy(QosInfo(qci=9, ambr_dl_bps=10e6,
                                        ambr_ul_bps=5e6))
        assert not caps.can_satisfy(QosInfo(qci=1, ambr_dl_bps=1e6,
                                            ambr_ul_bps=1e6))
        assert not caps.can_satisfy(QosInfo(qci=9, ambr_dl_bps=20e6,
                                            ambr_ul_bps=1e6))


class TestSelectQos:
    def test_plan_within_capability_passes_through(self):
        caps = QosCapabilities(supported_qcis=(8, 9))
        plan = QosInfo(qci=8, ambr_dl_bps=10e6, ambr_ul_bps=5e6)
        selected = select_qos(caps, plan)
        assert selected == plan

    def test_ambr_clamped(self):
        caps = QosCapabilities(supported_qcis=(9,), max_ambr_dl_bps=5e6,
                               max_ambr_ul_bps=2e6)
        selected = select_qos(caps, QosInfo(qci=9, ambr_dl_bps=100e6,
                                            ambr_ul_bps=50e6))
        assert selected.ambr_dl_bps == 5e6
        assert selected.ambr_ul_bps == 2e6

    def test_unsupported_qci_falls_back_to_default(self):
        caps = QosCapabilities(supported_qcis=(9,))
        selected = select_qos(caps, QosInfo(qci=1, ambr_dl_bps=1e6,
                                            ambr_ul_bps=1e6))
        assert selected.qci == 9

    def test_no_acceptable_qci_raises(self):
        caps = QosCapabilities(supported_qcis=(5,))
        with pytest.raises(QosError):
            select_qos(caps, QosInfo(qci=8, ambr_dl_bps=1e6,
                                     ambr_ul_bps=1e6))

    @given(dl=st.floats(min_value=1e3, max_value=1e9),
           ul=st.floats(min_value=1e3, max_value=1e9),
           cap_dl=st.floats(min_value=1e3, max_value=1e9),
           cap_ul=st.floats(min_value=1e3, max_value=1e9))
    @settings(max_examples=50, deadline=None)
    def test_selection_always_satisfiable(self, dl, ul, cap_dl, cap_ul):
        """Whatever the plan asks, the selection fits the capability."""
        caps = QosCapabilities(supported_qcis=(8, 9),
                               max_ambr_dl_bps=cap_dl,
                               max_ambr_ul_bps=cap_ul)
        plan = QosInfo(qci=9, ambr_dl_bps=dl, ambr_ul_bps=ul)
        selected = select_qos(caps, plan)
        assert caps.can_satisfy(selected)

    def test_qci_table_well_formed(self):
        for qci, (resource, priority, delay_ms, loss) in QCI_TABLE.items():
            assert resource in ("GBR", "Non-GBR")
            assert 1 <= priority <= 9
            assert delay_ms > 0
            assert 0 < loss < 1
