"""Unit + property tests for EPS-AKA and the NAS security context."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lte.aka import (
    AkaError,
    UsimState,
    f1,
    f2,
    f5,
    generate_auth_vector,
    usim_authenticate,
)
from repro.lte.security import SecurityContext, SecurityError

K = bytes(range(16))
SN = "00101"


class TestAuthVectorGeneration:
    def test_vector_is_deterministic_given_rand(self):
        v1 = generate_auth_vector(K, sqn=1, serving_network=SN, rand=b"r" * 16)
        v2 = generate_auth_vector(K, sqn=1, serving_network=SN, rand=b"r" * 16)
        assert v1 == v2

    def test_vector_varies_with_rand(self):
        v1 = generate_auth_vector(K, sqn=1, serving_network=SN, rand=b"a" * 16)
        v2 = generate_auth_vector(K, sqn=1, serving_network=SN, rand=b"b" * 16)
        assert v1.xres != v2.xres
        assert v1.kasme != v2.kasme

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            generate_auth_vector(b"short", sqn=1, serving_network=SN)


class TestMutualAuthentication:
    def test_ue_accepts_genuine_network_and_keys_agree(self):
        vector = generate_auth_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        res, kasme = usim_authenticate(usim, vector.rand, vector.autn, SN)
        assert res == vector.xres      # network validates subscriber
        assert kasme == vector.kasme   # both derive the same master key

    def test_ue_rejects_wrong_network_key(self):
        vector = generate_auth_vector(bytes(16), sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        with pytest.raises(AkaError, match="not authentic"):
            usim_authenticate(usim, vector.rand, vector.autn, SN)

    def test_ue_rejects_replayed_sqn(self):
        vector = generate_auth_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=10)  # already saw newer
        with pytest.raises(AkaError, match="SQN"):
            usim_authenticate(usim, vector.rand, vector.autn, SN)

    def test_ue_rejects_sqn_too_far_ahead(self):
        vector = generate_auth_vector(K, sqn=1000, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=1, sqn_window=32)
        with pytest.raises(AkaError, match="SQN"):
            usim_authenticate(usim, vector.rand, vector.autn, SN)

    def test_sqn_advances_after_success(self):
        vector = generate_auth_vector(K, sqn=5, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=4)
        usim_authenticate(usim, vector.rand, vector.autn, SN)
        assert usim.highest_sqn == 5
        # Replaying the same vector now fails.
        with pytest.raises(AkaError):
            usim_authenticate(usim, vector.rand, vector.autn, SN)

    def test_kasme_binds_serving_network(self):
        vector = generate_auth_vector(K, sqn=5, serving_network="00101")
        usim = UsimState(k=K, highest_sqn=4)
        _, kasme = usim_authenticate(usim, vector.rand, vector.autn, "99999")
        assert kasme != vector.kasme  # different SN id -> different key

    def test_malformed_autn_rejected(self):
        usim = UsimState(k=K)
        with pytest.raises(AkaError, match="malformed"):
            usim_authenticate(usim, b"r" * 16, b"too-short", SN)

    @given(sqn=st.integers(min_value=1, max_value=2**40))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, sqn):
        vector = generate_auth_vector(K, sqn=sqn, serving_network=SN)
        usim = UsimState(k=K, highest_sqn=sqn - 1)
        res, kasme = usim_authenticate(usim, vector.rand, vector.autn, SN)
        assert res == vector.xres and kasme == vector.kasme


class TestMilenageFunctions:
    def test_functions_are_domain_separated(self):
        rand = b"r" * 16
        assert f2(K, rand) != f5(K, rand)[:8]

    def test_f1_depends_on_all_inputs(self):
        base = f1(K, b"r" * 16, b"\x00" * 6, b"\x80\x00")
        assert f1(K, b"s" * 16, b"\x00" * 6, b"\x80\x00") != base
        assert f1(K, b"r" * 16, b"\x01" * 6, b"\x80\x00") != base
        assert f1(K, b"r" * 16, b"\x00" * 6, b"\x00\x00") != base


class TestSecurityContext:
    def test_keys_derived_from_kasme(self):
        ctx = SecurityContext(kasme=b"k" * 32)
        assert ctx.k_nas_enc != ctx.k_nas_int
        assert len(ctx.k_nas_enc) == 32

    def test_same_kasme_same_keys(self):
        a = SecurityContext(kasme=b"k" * 32)
        b = SecurityContext(kasme=b"k" * 32)
        assert a.k_nas_enc == b.k_nas_enc
        assert a.k_nas_int == b.k_nas_int

    def test_uplink_roundtrip(self):
        ue = SecurityContext(kasme=b"k" * 32)
        net = SecurityContext(kasme=b"k" * 32)
        protected = ue.protect_uplink(b"esm payload")
        assert net.unprotect_uplink(protected) == b"esm payload"

    def test_downlink_roundtrip(self):
        ue = SecurityContext(kasme=b"k" * 32)
        net = SecurityContext(kasme=b"k" * 32)
        protected = net.protect_downlink(b"paging")
        assert ue.unprotect_downlink(protected) == b"paging"

    def test_direction_confusion_rejected(self):
        a = SecurityContext(kasme=b"k" * 32)
        b = SecurityContext(kasme=b"k" * 32)
        protected = a.protect_uplink(b"data")
        with pytest.raises(SecurityError):
            b.unprotect_downlink(protected)

    def test_tampered_message_rejected(self):
        a = SecurityContext(kasme=b"k" * 32)
        b = SecurityContext(kasme=b"k" * 32)
        protected = bytearray(a.protect_uplink(b"data"))
        protected[-1] ^= 0x01
        with pytest.raises(SecurityError):
            b.unprotect_uplink(bytes(protected))

    def test_wrong_kasme_rejected(self):
        a = SecurityContext(kasme=b"k" * 32)
        b = SecurityContext(kasme=b"x" * 32)
        with pytest.raises(SecurityError):
            b.unprotect_uplink(a.protect_uplink(b"data"))

    def test_counts_advance(self):
        ctx = SecurityContext(kasme=b"k" * 32)
        ctx.protect_uplink(b"one")
        ctx.protect_uplink(b"two")
        assert ctx.ul_count == 2
        assert ctx.dl_count == 0

    def test_kenb_changes_with_count(self):
        ctx = SecurityContext(kasme=b"k" * 32)
        kenb_0 = ctx.derive_kenb()
        ctx.protect_uplink(b"x")
        assert ctx.derive_kenb() != kenb_0

    def test_short_payload_rejected(self):
        ctx = SecurityContext(kasme=b"k" * 32)
        with pytest.raises(SecurityError):
            ctx.unprotect_uplink(b"tiny")
