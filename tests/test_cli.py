"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (["fig7"], ["attach"], ["table1"], ["fig8"],
                     ["fig9"], ["fig10"], ["fig10", "--single-drive"],
                     ["report", "--scale", "0.2"], ["churn"],
                     ["chaos"], ["chaos", "--smoke"],
                     ["chaos", "--loss", "0.05", "--revoke-every", "10",
                      "--outage-at", "2.0", "--json"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_attach_arch_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attach", "--arch", "XX"])


class TestExecution:
    def test_attach_command_runs(self, capsys):
        assert main(["attach", "--arch", "CB", "--placement", "us-west-1",
                     "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "CB @ us-west-1" in out
        assert "agw+brokerd" in out

    def test_fig7_command_runs(self, capsys):
        assert main(["fig7", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "us-east-1" in out

    def test_chaos_command_runs_and_checks_invariants(self, capsys):
        assert main(["chaos", "--attaches", "10", "--loss", "0.05",
                     "--revoke-every", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "success rate" in out
        assert "unauthorized" in out
        assert "INVARIANT VIOLATED" not in out

    def test_chaos_smoke_writes_bench_json(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_chaos.json"
        assert main(["chaos", "--smoke", "--attaches", "30",
                     "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["violations"] == []
        assert payload["unauthorized_session_seconds"] == 0.0
        assert payload["success_rate"] >= 0.95

    def test_table1_subset_runs(self, capsys):
        assert main(["table1", "--scale", "0.1", "--routes",
                     "downtown"]) == 0
        out = capsys.readouterr().out
        assert "downtown" in out
        assert "CellBricks" in out
