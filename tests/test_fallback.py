"""Tests for the plain-TCP + HTTP-range incremental-deployment fallback."""

import pytest

from repro.apps.fallback import (
    RANGE_GRANULARITY,
    RangeDownloadServer,
    RangeRestartDownloader,
)
from repro.net import CellularPath, Simulator

TOTAL = 3_000_000


def make_path():
    sim = Simulator()
    # Police to 8 Mbps (small burst) so a 3 MB download spans several
    # seconds and the scheduled handovers land mid-transfer.
    path = CellularPath(sim, shaper_rate=8e6, shaper_burst=2e5)
    path.assign_ue_address()
    return sim, path


def do_handover(sim, path, at, prefix="10.129.0"):
    def go():
        path.detach(interruption_s=0.05)
        sim.schedule(0.1, path.attach, prefix)
    sim.schedule_at(at, go)


class TestRangeRestart:
    def test_plain_download_without_mobility(self):
        sim, path = make_path()
        server = RangeDownloadServer(path.server, TOTAL)
        client = RangeRestartDownloader(path.ue, path.server.address, TOTAL)
        client.start()
        sim.run(until=30)
        assert client.done
        assert client.received == TOTAL
        assert client.restarts == 0
        assert server.range_requests == 0

    def test_download_resumes_after_ip_change(self):
        sim, path = make_path()
        server = RangeDownloadServer(path.server, TOTAL)
        client = RangeRestartDownloader(path.ue, path.server.address, TOTAL)
        client.start()
        do_handover(sim, path, at=0.8)
        sim.run(until=60)
        assert client.done
        assert client.received == TOTAL
        assert client.restarts == 1
        assert server.range_requests == 1

    def test_multiple_ip_changes(self):
        sim, path = make_path()
        RangeDownloadServer(path.server, TOTAL)
        client = RangeRestartDownloader(path.ue, path.server.address, TOTAL)
        client.start()
        do_handover(sim, path, at=0.5, prefix="10.130.0")
        do_handover(sim, path, at=1.2, prefix="10.131.0")
        sim.run(until=60)
        assert client.done
        assert client.received == TOTAL
        assert client.restarts == 2

    def test_range_restart_avoids_refetching_prefix(self):
        """The point of Range headers: a restart re-fetches at most the
        current KiB, not the whole object."""
        sim, path = make_path()
        server = RangeDownloadServer(path.server, TOTAL)
        client = RangeRestartDownloader(path.ue, path.server.address, TOTAL)
        client.start()
        sim.run(until=0.8)
        progress = client.received
        assert progress > 100_000  # some of the object already arrived
        do_handover(sim, path, at=0.81)
        sim.run(until=60)
        assert client.done
        # The resumed request started near where we left off.
        assert server.range_requests == 1

    def test_handover_slower_than_mptcp_but_bounded(self):
        """Fallback costs a reconnect + slow start; it should finish, and
        within a modest delay of the no-handover case."""
        def run(with_handover):
            sim, path = make_path()
            RangeDownloadServer(path.server, TOTAL)
            client = RangeRestartDownloader(path.ue, path.server.address,
                                            TOTAL)
            client.start()
            if with_handover:
                do_handover(sim, path, at=0.5)
            sim.run(until=120)
            assert client.done
            return client.completed_at

        clean = run(False)
        disrupted = run(True)
        assert disrupted > clean
        assert disrupted < clean + 5.0
