"""Unit tests for the discrete-event engine."""

import pytest

from repro.net.sim import SimulationError, Simulator, Timer


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, 1)
        sim.schedule(1.0, order.append, 2)
        sim.schedule(1.0, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(1.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 2.0]


class TestRunControl:
    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, ran.append, 1)
        sim.schedule(5.0, ran.append, 5)
        sim.run(until=2.0)
        assert ran == [1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert ran == [1, 5]

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        ran = []
        for i in range(10):
            sim.schedule(float(i + 1), ran.append, i)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert ran == [0, 1, 2]

    def test_cancelled_events_do_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1.0, ran.append, "x")
        event.cancel()
        sim.run()
        assert ran == []

    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1

    def test_clear_drops_everything(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, ran.append, 1)
        sim.clear()
        sim.run()
        assert ran == []

    def test_run_returns_processed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.run() == 2


class TestHeapCompaction:
    """Lazy-cancellation bookkeeping at scale (the megaload hot path)."""

    def test_cancel_then_fire_never_runs_at_compaction_scale(self):
        # Enough churn to force multiple compactions; no cancelled
        # callback may ever run, and every live one must run exactly once.
        sim = Simulator()
        ran = []
        events = [sim.schedule(float(i + 1) * 1e-3, ran.append, i)
                  for i in range(2000)]
        for i in range(2000):
            if i % 3 != 2:
                events[i].cancel()
        for i in range(0, 2000, 6):   # double-cancel must stay idempotent
            events[i].cancel()
        sim.run()
        assert sim.compactions >= 1
        assert ran == [i for i in range(2000) if i % 3 == 2]

    def test_pending_stays_exact_through_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(1024)]
        assert sim.pending() == 1024
        for event in events[:700]:
            event.cancel()
        assert sim.pending() == 324
        assert sim.compactions >= 1
        # The physical queue shrank: dead entries were actually dropped.
        assert len(sim._queue) < 1024
        processed = sim.run()
        assert processed == 324
        assert sim.pending() == 0

    def test_no_compaction_below_min_queue(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(100)]
        for event in events[:90]:
            event.cancel()
        assert sim.compactions == 0
        assert sim.pending() == 10

    def test_compaction_can_be_disabled(self):
        sim = Simulator(compaction=False)
        events = [sim.schedule(float(i + 1), lambda: None)
                  for i in range(1024)]
        for event in events[:1000]:
            event.cancel()
        assert sim.compactions == 0
        assert len(sim._queue) == 1024      # dead entries linger
        assert sim.pending() == 24          # but the count stays exact
        assert sim.run() == 24

    def test_cancel_after_run_does_not_skew_counters(self):
        # A stale handle (event already fired or cleared) must be inert.
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1
        assert sim.run() == 1

    def test_cancel_during_callback_compaction_keeps_order(self):
        # A callback that mass-cancels (triggering compaction mid-run)
        # must not disturb the ordering of the survivors.
        sim = Simulator()
        ran = []
        victims = [sim.schedule(10.0 + i * 1e-3, ran.append, f"v{i}")
                   for i in range(600)]
        sim.schedule(1.0, lambda: [e.cancel() for e in victims])
        sim.schedule(2.0, ran.append, "mid")
        sim.schedule(20.0, ran.append, "end")
        sim.run()
        assert ran == ["mid", "end"]
        assert sim.compactions >= 1

    def test_schedule_stats(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.events_scheduled == 5
        assert sim.peak_queue == 5


class TestTimer:
    def test_timer_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_replaces_previous_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.schedule(1.0, timer.start, 5.0)
        sim.run()
        assert fired == [6.0]

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.schedule(1.0, timer.stop)
        sim.run()
        assert fired == []

    def test_armed_reflects_state(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed


class TestTickCalendar:
    def _calendar(self, tick=0.1):
        from repro.net.sim import TickCalendar
        sim = Simulator()
        fired = []
        calendar = TickCalendar(sim, tick,
                                lambda key, code: fired.append((key, code)))
        return sim, calendar, fired

    def test_dispatches_key_code_pairs_at_tick_time(self):
        sim, calendar, fired = self._calendar(tick=0.5)
        calendar.wake(4, 17, 3)
        sim.run()
        assert fired == [(17, 3)]
        assert sim.now == 2.0   # 4 * 0.5

    def test_code_defaults_to_zero(self):
        sim, calendar, fired = self._calendar()
        calendar.wake(1, 99)
        sim.run()
        assert fired == [(99, 0)]

    def test_same_tick_preserves_append_order(self):
        sim, calendar, fired = self._calendar()
        calendar.wake(3, 2, 20)
        calendar.wake(3, 1, 10)
        calendar.wake(3, 3, 30)
        sim.run()
        assert fired == [(2, 20), (1, 10), (3, 30)]

    def test_one_heap_event_per_occupied_tick(self):
        sim, calendar, fired = self._calendar()
        for key in range(100):
            calendar.wake(5, key)
        for key in range(50):
            calendar.wake(9, key)
        assert sim.events_scheduled == 2    # not 150
        assert calendar.pending() == 150
        sim.run()
        assert len(fired) == 150
        assert calendar.pending() == 0

    def test_buckets_are_recycled_through_the_freelist(self):
        sim, calendar, fired = self._calendar()
        calendar.wake(1, 7, 70)
        sim.run()
        first_bucket = calendar._freelist[0]
        calendar.wake(20, 8, 80)
        assert calendar._buckets[20] is first_bucket
        sim.run()
        assert fired == [(7, 70), (8, 80)]

    def test_wakes_queued_during_dispatch_land_on_later_ticks(self):
        from repro.net.sim import TickCalendar
        sim = Simulator()
        fired = []
        calendar = None

        def dispatch(key, code):
            fired.append((key, code))
            if key == 1:
                calendar.wake(10, 2, 0)

        calendar = TickCalendar(sim, 0.1, dispatch)
        calendar.wake(1, 1, 0)
        sim.run()
        assert fired == [(1, 0), (2, 0)]

    def test_rejects_nonpositive_tick(self):
        from repro.net.sim import TickCalendar
        with pytest.raises(SimulationError):
            TickCalendar(Simulator(), 0.0, lambda key, code: None)

    def test_not_cancellable(self):
        from repro.net.sim import TickCalendar
        assert TickCalendar.cancellable is False
