"""Tests for repro.obs: registry, tracer, exporters, instrumentation.

Covers the ISSUE acceptance bars that are not determinism-specific:
the fault-free attach produces a span tree with the exact expected leg
sequence, the measured legs sum to the end-to-end latency within 1%,
counters keep their legacy accessors while living in the registry, and
an un-instrumented run records no spans (zero-cost when disabled).
"""

import pytest

from repro.obs import (
    CounterAttr,
    MetricsRegistry,
    Obs,
)
from repro.obs.export import (
    LEG_NAMES,
    attach_leg_breakdown,
    mean_leg_breakdown,
    spans_to_chrome,
    spans_to_jsonl,
    summarize,
)
from repro.obs.metrics import Histogram
from repro.obs.trace import Tracer
from repro.testbed import ARCH_BASELINE, ARCH_CELLBRICKS, run_traced_attach


# -- metrics registry ---------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_and_gauge_roundtrip(self):
        reg = MetricsRegistry(node="n")
        reg.counter("a").inc()
        reg.counter("a").inc(2)
        reg.gauge("depth").set(7)
        snap = reg.snapshot()
        assert snap["a"] == 3
        assert snap["depth"] == 7

    def test_histogram_percentiles_clamped_to_observed(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 4.0, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 2.0 and hist.max == 5.0
        # Bucket interpolation cannot leave the observed range.
        assert 2.0 <= hist.percentile(50.0) <= 5.0
        assert hist.percentile(99.0) <= 5.0
        assert hist.percentile(0.0) >= 2.0

    def test_histogram_overflow_bucket(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(1000.0)
        assert hist.counts[-1] == 1
        assert hist.percentile(99.0) == 1000.0

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(node="a"), MetricsRegistry(node="b")
        a.counter("x").inc(2)
        b.counter("x").inc(3)
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(100.0)
        fleet = MetricsRegistry.merged([a, b])
        snap = fleet.snapshot()
        assert snap["x"] == 5
        assert snap["lat"]["count"] == 2
        assert snap["lat"]["min"] == 1.0 and snap["lat"]["max"] == 100.0

    def test_counter_vec_keeps_dict_interface(self):
        reg = MetricsRegistry(node="n")
        vec = reg.counter_vec("denied", "cause")
        vec["expired"] += 1
        vec["expired"] += 1
        vec["replay"] += 1
        assert dict(vec) == {"expired": 2, "replay": 1}
        assert reg.snapshot()["denied{cause=expired}"] == 2

    def test_counter_attr_descriptor(self):
        class Thing:
            hits = CounterAttr("thing.hits")

            def __init__(self):
                self.metrics = MetricsRegistry(node="t")
                self.hits = 0

        thing = Thing()
        thing.hits += 1
        thing.hits += 1
        assert thing.hits == 2
        assert thing.metrics.snapshot()["thing.hits"] == 2


# -- tracer -------------------------------------------------------------------

class TestTracer:
    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", "n", at=float(i))
        assert len(tracer.spans()) == 4
        assert tracer.spans_dropped == 6
        assert tracer.spans_recorded == 10

    def test_zero_trace_id_roots_fresh_trace(self):
        tracer = Tracer()
        span = tracer.begin("x", "n", "c", start=0.0, end=1.0, trace_id=0)
        assert span.trace_id > 0
        assert span.parent_id == 0

    def test_exporters_roundtrip(self):
        tracer = Tracer()
        root = tracer.start_trace("attach", "ue", "ue", start=0.0)
        tracer.begin("child", "ue", "ue", start=0.0, end=0.5,
                     trace_id=root.trace_id, parent_id=root.span_id)
        tracer.finish(root, 1.0)
        jsonl = spans_to_jsonl(tracer.spans())
        assert jsonl.count("\n") == 2
        chrome = spans_to_chrome(tracer.spans())
        # 1 process_name + 1 thread_name ("ue") metadata event + 2 spans.
        assert len(chrome["traceEvents"]) == 4
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        spans = [e for e in chrome["traceEvents"] if e["ph"] != "M"]
        assert all(isinstance(e["tid"], int) for e in spans)
        assert "attach" in summarize(tracer.spans())


# -- instrumented attach ------------------------------------------------------

# The causal order of the CellBricks fault-free attach, as recorded by
# the tracer (span creation order).  This is the SAP + NAS smc exchange
# of §4.1 end to end.
EXPECTED_CB_SEQUENCE = [
    "attach",
    "sap.ue_craft",
    "nas.enb_relay_up",
    "sap.btelco_sign",
    "sap.broker_verify",
    "sap.btelco_verify",
    "nas.enb_relay_down",
    "nas.enb_relay_down",
    "sap.ue_verify",
    "nas.ue_smc",
    "nas.enb_relay_up",
    "nas.agw_smc_complete",
    "nas.enb_relay_down",
    "nas.ue_protected",
]


class TestTracedAttach:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_traced_attach(arch=ARCH_CELLBRICKS,
                                 placement="us-west-1", trials=3)

    def test_fault_free_attach_span_sequence(self, traced):
        _, obs, _ = traced
        traces = obs.tracer.traces()
        roots = [spans for spans in traces.values()
                 if spans and spans[0].name == "attach"]
        assert len(roots) == 3
        for spans in roots:
            names = [s.name for s in spans if s.kind == "span"]
            # The attach sequence is a prefix: detach spans may follow
            # in the same trace context.
            assert names[:len(EXPECTED_CB_SEQUENCE)] == EXPECTED_CB_SEQUENCE

    def test_spans_form_a_connected_tree(self, traced):
        _, obs, _ = traced
        for spans in obs.tracer.traces().values():
            ids = {s.span_id for s in spans}
            for span in spans:
                assert span.parent_id == 0 or span.parent_id in ids

    def test_legs_sum_to_total_within_1pct(self, traced):
        _, obs, _ = traced
        breakdowns = attach_leg_breakdown(obs.tracer.spans())
        assert len(breakdowns) == 3
        for b in breakdowns:
            legsum = sum(b[leg] for leg in LEG_NAMES)
            assert legsum == pytest.approx(b["total_ms"], rel=0.01)

    def test_mean_breakdown_matches_module_accounting(self, traced):
        result, obs, _ = traced
        legs = mean_leg_breakdown(attach_leg_breakdown(obs.tracer.spans()))
        assert legs["total_ms"] == pytest.approx(result.total_ms, rel=0.01)
        assert legs["ue_crypto_ms"] == pytest.approx(result.ue_ms, rel=0.01)

    def test_latency_histogram_always_recorded(self, traced):
        _, obs, harness = traced
        hist = harness.ue.metrics.find_histogram("attach.latency_ms")
        assert hist is not None and hist.count == 3
        # ... and merged into the fleet registry.
        assert obs.metrics.snapshot()["attach.latency_ms"]["count"] == 3

    def test_baseline_arch_also_traces(self):
        _, obs, _ = run_traced_attach(arch=ARCH_BASELINE,
                                      placement="local", trials=1)
        names = {s.name for s in obs.tracer.spans()}
        assert "attach" in names
        assert "s6a.hss_air" in names
        breakdowns = attach_leg_breakdown(obs.tracer.spans())
        assert len(breakdowns) == 1


# -- zero-cost when disabled --------------------------------------------------

class TestDisabled:
    def test_untraced_run_records_nothing(self):
        from repro.testbed.attach_bench import run_attach_benchmark

        result = run_attach_benchmark(ARCH_CELLBRICKS, "local", trials=2)
        assert len(result.samples) == 2
        # No Obs was installed, so there is no sim.obs anywhere to have
        # recorded into; metrics still work (they are per-node).

    def test_tracing_disabled_obs_records_no_spans(self):
        obs = Obs(tracing=False)
        _, obs, harness = run_traced_attach(
            arch=ARCH_CELLBRICKS, placement="local", trials=2, obs=obs)
        assert obs.tracer.spans() == []
        hist = harness.ue.metrics.find_histogram("attach.latency_ms")
        assert hist is not None and hist.count == 2

    def test_disabled_latency_envelope_unchanged(self):
        from repro.testbed.attach_bench import run_attach_benchmark

        plain = run_attach_benchmark(ARCH_CELLBRICKS, "us-west-1", trials=3)
        traced, _, _ = run_traced_attach(arch=ARCH_CELLBRICKS,
                                         placement="us-west-1", trials=3)
        # The tracer is passive: virtual-time latency must be identical.
        assert traced.total_ms == pytest.approx(plain.total_ms, abs=1e-9)


# -- stat-drift fixes ---------------------------------------------------------

class TestStatIdentities:
    def test_reliable_request_identity_holds(self):
        """sent == completed + failed + cancelled + outstanding."""
        from repro.emulation import ChaosSchedule, outage, run_chaos

        schedule = ChaosSchedule()
        schedule.add(outage(1.0, 2.0, target="*-broker"))
        report = run_chaos(attaches=30, schedule=schedule, revoke_every=5,
                           seed=3, base_loss=0.1)
        stats = report.broker_stats
        assert stats["requests_sent"] == (
            stats["requests_completed"] + stats["requests_failed"]
            + stats["requests_cancelled"] + stats["requests_outstanding"])

    def test_cancel_counts_as_cancelled_not_failed(self):
        from repro.lte.signaling import SignalingNode
        from repro.net import Host, Simulator

        class Msg:
            pass

        sim = Simulator()
        node = SignalingNode(Host(sim, "a", address="10.0.0.1"), "a")
        corr = node.send_request("10.0.0.2", Msg(), size=10)
        node.cancel_request(corr)
        stats = node.reliable_stats()
        assert stats["requests_cancelled"] == 1
        assert stats["requests_failed"] == 0
        assert stats["requests_sent"] == (
            stats["requests_completed"] + stats["requests_failed"]
            + stats["requests_cancelled"] + stats["requests_outstanding"])
