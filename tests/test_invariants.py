"""Stateful property-based tests on core data structures (hypothesis).

Each machine drives a component through random operation sequences and
checks the invariants the rest of the system leans on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.net import AddressPool, TokenBucket
from repro.net.mptcp import _ConnReceiver
from repro.net.quic import _StreamReceiver


class AddressPoolMachine(RuleBasedStateMachine):
    """Allocate/release in any order: no double allocation, no leaks."""

    def __init__(self):
        super().__init__()
        self.pool = AddressPool("10.77.0", first_host=2, last_host=30)
        self.held: set = set()

    @rule()
    def allocate(self):
        try:
            address = self.pool.allocate()
        except RuntimeError:
            assert len(self.held) == 29  # pool genuinely exhausted
            return
        assert address not in self.held
        assert self.pool.owns(address)
        self.held.add(address)

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def release(self, data):
        address = data.draw(st.sampled_from(sorted(self.held)))
        self.pool.release(address)
        self.held.remove(address)

    @invariant()
    def accounting_consistent(self):
        assert self.pool.allocated_count == len(self.held)


TestAddressPool = AddressPoolMachine.TestCase
TestAddressPool.settings = settings(max_examples=25,
                                    stateful_step_count=40,
                                    deadline=None)


class ReceiverEquivalenceMachine(RuleBasedStateMachine):
    """The MPTCP and QUIC stream receivers against a reference model.

    Random (offset, length) ranges — duplicated, overlapping, out of
    order — must deliver exactly the union of contiguous-from-zero bytes,
    exactly once.
    """

    def __init__(self):
        super().__init__()
        self.mptcp = _ConnReceiver()
        self.quic = _StreamReceiver()
        self.covered: set = set()
        self.delivered_mptcp = 0
        self.delivered_quic = 0

    @rule(offset=st.integers(min_value=0, max_value=400),
          length=st.integers(min_value=1, max_value=120))
    def receive(self, offset, length):
        self.covered.update(range(offset, offset + length))
        self.delivered_mptcp += self.mptcp.on_mapped_data(offset, length)
        self.delivered_quic += self.quic.receive(offset, length)

    @invariant()
    def delivery_matches_reference(self):
        expected = 0
        while expected in self.covered:
            expected += 1
        assert self.delivered_mptcp == expected
        assert self.mptcp.rcv_nxt == expected
        assert self.delivered_quic == expected
        assert self.quic.delivered == expected


TestReceiverEquivalence = ReceiverEquivalenceMachine.TestCase
TestReceiverEquivalence.settings = settings(max_examples=30,
                                            stateful_step_count=30,
                                            deadline=None)


class TestTokenBucketConformance:
    @given(rate=st.floats(min_value=1e4, max_value=1e7),
           burst=st.floats(min_value=1e3, max_value=1e5),
           sizes=st.lists(st.integers(min_value=100, max_value=1500),
                          min_size=5, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_long_run_rate_never_exceeded(self, rate, burst, sizes):
        """A greedy sender policed by the bucket cannot beat
        burst + rate * time over any horizon."""
        bucket = TokenBucket(rate, burst)
        now = 0.0
        sent = 0
        for size in sizes:
            wait = bucket.delay_until_conforming(size, now)
            now += wait
            bucket.consume(size, now)
            sent += size
            assert sent <= burst + rate / 8.0 * now + 1e-6

    @given(rate=st.floats(min_value=1e4, max_value=1e7),
           burst=st.floats(min_value=1e3, max_value=1e5))
    @settings(max_examples=40, deadline=None)
    def test_conforming_delay_is_exact(self, rate, burst):
        """After waiting exactly the conforming delay, the packet fits."""
        bucket = TokenBucket(rate, burst)
        bucket.consume(int(burst), now=0.0)
        size = 1000
        delay = bucket.delay_until_conforming(size, now=0.0)
        assert bucket.delay_until_conforming(size, now=delay) < 1e-6
