"""Unit tests for the reliable-request layer of the signaling framework.

Two plain :class:`SignalingNode` endpoints over one lossy/interruptible
link: retransmission with capped exponential backoff, correlation-id
matching, receiver-side duplicate suppression with cached-response
replay, give-up on attempt budget / deadline, and TTL-bounded state.
"""

from dataclasses import dataclass

import pytest

from repro.lte.signaling import (
    KIND_REQUEST,
    SIGNALING_PORT,
    SignalingEnvelope,
    SignalingNode,
)
from repro.net import Host, Link, Simulator


@dataclass
class Ping:
    payload: str = "ping"


@dataclass
class Pong:
    payload: str = "pong"


class World:
    """client --(link)-- server, with handler-run and reply logs."""

    def __init__(self, delay=0.001):
        self.sim = Simulator()
        self.client_host = Host(self.sim, "client-host",
                                address="10.0.0.1")
        self.server_host = Host(self.sim, "server-host",
                                address="10.0.0.2")
        self.link = Link(self.sim, "cs", self.client_host,
                         self.server_host, bandwidth_bps=1e9,
                         delay_s=delay)
        self.client = SignalingNode(self.client_host, "client")
        self.server = SignalingNode(self.server_host, "server")
        self.handler_runs = 0
        self.pongs = []
        self.server.on(Ping, self._serve)
        self.client.on(Pong, lambda src, msg: self.pongs.append(msg))

    def _serve(self, src_ip, message):
        self.handler_runs += 1
        self.server.send(src_ip, Pong(f"re:{message.payload}"))

    @property
    def uplink(self):
        return self.link.a_to_b      # client -> server

    @property
    def downlink(self):
        return self.link.b_to_a      # server -> client


class TestHappyPath:
    def test_request_completes_without_retransmission(self):
        world = World()
        world.client.send_request(world.server_host.address, Ping())
        world.sim.run()
        assert world.pongs == [Pong("re:ping")]
        assert world.handler_runs == 1
        assert world.client.requests_completed == 1
        assert world.client.retransmissions == 0
        assert world.client.reliable_stats()["requests_outstanding"] == 0

    def test_plain_send_bypasses_reliability(self):
        world = World()
        world.client.send(world.server_host.address, Ping())
        world.sim.run()
        # The reply is a plain datagram too: no correlation state at all.
        assert world.handler_runs == 1
        assert world.client.requests_sent == 0
        assert world.server.reliable_stats()["response_cache_size"] == 0


class TestRetransmission:
    def test_lost_request_is_retransmitted_until_delivered(self):
        world = World()
        world.uplink.set_up(False)
        world.sim.schedule(1.0, world.uplink.set_up, True)
        world.client.send_request(world.server_host.address, Ping())
        world.sim.run()
        assert world.pongs == [Pong("re:ping")]
        assert world.handler_runs == 1
        assert world.client.retransmissions >= 1
        assert world.client.requests_completed == 1
        assert world.client.requests_failed == 0

    def test_lost_response_replayed_from_cache_not_reexecuted(self):
        world = World()
        # The response direction is dark just long enough to eat the
        # first reply; the client's retransmission then hits the dedup
        # cache and the server replays without re-running the handler.
        world.downlink.set_up(False)
        world.sim.schedule(0.2, world.downlink.set_up, True)
        world.client.send_request(world.server_host.address, Ping())
        world.sim.run()
        assert world.pongs == [Pong("re:ping")]
        assert world.handler_runs == 1           # exactly once
        assert world.server.dup_requests >= 1
        assert world.server.dup_responses_replayed >= 1
        assert world.client.requests_completed == 1

    def test_backoff_grows_and_caps(self):
        world = World()
        world.uplink.set_up(False)               # nothing ever arrives
        fired = []
        world.client.send_request(
            world.server_host.address, Ping(), max_attempts=6,
            on_retransmit=lambda msg, attempt: fired.append(world.sim.now))
        world.sim.run()
        assert len(fired) == 5
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        # Nominal gaps 0.8, 1.6, 3.0, 3.0 (x2 backoff capped at 3.0),
        # each with +/-10% jitter.
        assert gaps == sorted(gaps) or gaps[-1] == pytest.approx(
            gaps[-2], rel=0.25)
        for gap, nominal in zip(gaps, (0.8, 1.6, 3.0, 3.0)):
            assert gap == pytest.approx(nominal, rel=0.11)

    def test_jitter_is_deterministic_per_node_name(self):
        def retransmit_times():
            world = World()
            world.uplink.set_up(False)
            fired = []
            world.client.send_request(
                world.server_host.address, Ping(),
                on_retransmit=lambda m, a: fired.append(world.sim.now))
            world.sim.run()
            return fired

        assert retransmit_times() == retransmit_times()


class TestGiveUp:
    def test_attempt_budget_exhaustion_reports_failure(self):
        world = World()
        world.uplink.set_up(False)
        gave_up = []
        world.client.send_request(world.server_host.address, Ping(),
                                  on_give_up=gave_up.append)
        world.sim.run()
        assert gave_up == [Ping()]
        assert world.client.requests_failed == 1
        assert world.client.requests_completed == 0
        # 5 attempts total = 4 retransmissions, then clean state.
        assert world.client.retransmissions == 4
        assert world.client.reliable_stats()["requests_outstanding"] == 0

    def test_deadline_bounds_retransmission(self):
        world = World()
        world.uplink.set_up(False)
        gave_up = []
        world.client.send_request(world.server_host.address, Ping(),
                                  max_attempts=10_000, deadline=2.0,
                                  on_give_up=gave_up.append)
        world.sim.run()
        assert gave_up == [Ping()]
        # The first timeout at or after the deadline stops the retry
        # loop: bounded by deadline + capped timeout + jitter.
        assert world.sim.now <= 2.0 + 3.0 * 1.1

    def test_cancel_stops_retransmission(self):
        world = World()
        world.uplink.set_up(False)
        correlation_id = world.client.send_request(
            world.server_host.address, Ping())
        assert world.client.cancel_request(correlation_id)
        world.sim.run()
        assert world.client.retransmissions == 0
        assert world.client.requests_failed == 0
        assert not world.client.cancel_request(correlation_id)


class TestReceiverState:
    def test_late_duplicate_request_replays_and_response_is_dropped(self):
        world = World()
        correlation_id = world.client.send_request(
            world.server_host.address, Ping())
        world.sim.run()
        assert world.client.requests_completed == 1
        # A straggler copy of the request arrives after completion: the
        # server replays its cached response, and the client (with no
        # pending entry) must drop it rather than double side effects.
        world.client.socket.send_to(
            world.server_host.address, SIGNALING_PORT, 256,
            SignalingEnvelope(Ping(), correlation_id=correlation_id,
                              kind=KIND_REQUEST, attempt=2))
        world.sim.run()
        assert world.handler_runs == 1
        assert world.server.dup_responses_replayed == 1
        assert world.client.responses_unmatched == 1
        assert len(world.pongs) == 1

    def test_dedup_cache_is_ttl_bounded(self):
        world = World()
        world.server.response_cache_ttl = 1.0
        world.client.send_request(world.server_host.address, Ping())
        world.sim.run()
        assert world.server.reliable_stats()["response_cache_size"] == 1
        # The next request past the TTL sweeps the stale entry out.
        world.sim.schedule(5.0, world.client.send_request,
                           world.server_host.address, Ping())
        world.sim.run()
        assert world.handler_runs == 2
        assert world.server.reliable_stats()["response_cache_size"] == 1
