"""Integration tests: SAP attach + host-driven mobility over the full
multi-bTelco network."""

import pytest

from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.net import Simulator


@pytest.fixture()
def network():
    sim = Simulator()
    net = build_cellbricks_network(sim, site_names=("btelco-a", "btelco-b"))
    return sim, net


class TestSapAttach:
    def test_attach_succeeds_against_unknown_btelco(self, network):
        """The defining CellBricks property: no pre-established agreement
        between the UE/broker and the serving bTelco."""
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        assert manager.ue.ue_ip.startswith("10.128.0.")
        assert net.brokerd.requests_approved == 1

    def test_security_context_established_from_ss(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        context = next(iter(agw.contexts.values()))
        # UE and bTelco derived identical NAS keys from the broker's ss.
        assert manager.ue.security.k_nas_enc == context.security.k_nas_enc
        assert manager.ue.security.k_nas_int == context.security.k_nas_int

    def test_btelco_learns_only_pseudonym(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        context = next(iter(agw.contexts.values()))
        assert "alice" not in context.subscriber_id
        assert context.subscriber_id.startswith("anon-")

    def test_unenrolled_ue_rejected(self, network):
        sim, net = network
        net.brokerd.revoke_subscriber("alice")
        manager = MobilityManager(net)
        results = []
        manager.start("btelco-a")
        manager.ue.on_attach_done = results.append
        sim.run(until=1.0)
        assert results and not results[0].success
        assert net.brokerd.requests_denied == 1

    def test_attach_uses_single_broker_round_trip(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        # Exactly one request hit brokerd (vs 2 S6a RTs in the baseline).
        assert net.brokerd.messages_handled == 1

    def test_qos_info_applied_to_bearer(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        context = next(iter(agw.contexts.values()))
        caps = agw.sap.config.qos_capabilities
        assert context.bearer.qci in caps.supported_qcis
        assert context.bearer.ambr_dl_bps <= caps.max_ambr_dl_bps


class TestHostDrivenMobility:
    def test_switch_between_btelcos(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        first_ip = manager.ue.ue_ip
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        assert manager.ue.state == "ATTACHED"
        assert manager.ue.ue_ip.startswith("10.129.0.")
        assert manager.ue.ue_ip != first_ip
        assert len(manager.attach_latencies) == 2

    def test_switch_requires_no_intertelco_coordination(self, network):
        """bTelco A's AGW never talks to bTelco B's — all coordination is
        host-driven."""
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        a_sent_before = net.sites["btelco-a"].agw.messages_sent
        b_handled_before = net.sites["btelco-b"].agw.messages_handled
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        # A's only activity is tearing down its own side of the UE's
        # courtesy detach (one S1 release towards its own eNodeB); it
        # exchanges nothing with B.
        assert net.sites["btelco-a"].agw.messages_sent <= a_sent_before + 1
        # Everything B handled came from its eNB or the broker — count:
        # SAP request, broker response, SMC complete, attach complete.
        assert net.sites["btelco-b"].agw.messages_handled \
            == b_handled_before + 4

    def test_data_path_address_follows_attach(self):
        sim = Simulator()
        net = build_cellbricks_network(sim, with_data_path=True)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert net.data_path.ue.address == manager.ue.ue_ip
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        assert net.data_path.ue.address == manager.ue.ue_ip
        assert net.data_path.ue.address.startswith("10.129.0.")

    def test_repeated_switching(self, network):
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        for i in range(4):
            manager.switch_to("btelco-b" if i % 2 == 0 else "btelco-a")
            sim.run(until=sim.now + 1.0)
        assert manager.switches == 4
        assert len(manager.attach_latencies) == 5
        assert manager.ue.state == "ATTACHED"

    def test_broker_assigned_ambr_enforced_on_data_plane(self):
        """§4.1 QoS enforcement: the bTelco polices the UE's downlink to
        the broker's qosInfo AMBR."""
        from repro.apps import IperfClient, IperfServer, KIND_MPTCP
        from repro.core.qos import QosInfo

        sim = Simulator()
        net = build_cellbricks_network(sim, with_data_path=True)
        net.brokerd.sap.subscribers["alice"].qos_plan = QosInfo(
            qci=9, ambr_dl_bps=5e6, ambr_ul_bps=2e6)
        manager = MobilityManager(net, enforce_qos=True)
        IperfServer(KIND_MPTCP, net.data_path.server)
        manager.start("btelco-a")
        sim.run(until=1.0)
        client = IperfClient(KIND_MPTCP, net.data_path.ue,
                             net.data_path.server.address)
        client.start()
        sim.run(until=21.0)
        achieved = client.stats.average_mbps(20.0)
        # The radio could do 75 Mbps; the PGW polices to the plan's 5.
        assert 3.0 < achieved < 6.0

    def test_attach_latency_reasonable(self, network):
        """SAP latency at the ~us-west broker placement should sit in the
        paper's 30-80 ms envelope (§6.2 expects 30-80 ms)."""
        sim, net = network
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert 0.020 < manager.attach_latencies[0] < 0.080


class TestSessionExpiry:
    def test_expired_authorization_triggers_network_detach(self):
        sim = Simulator()
        net = build_cellbricks_network(sim)
        net.brokerd.sap.session_ttl = 5.0  # short-lived grants
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        assert manager.ue.state == "ATTACHED"
        detached = []
        manager.ue.on_detached = lambda: detached.append(sim.now)
        agw = net.sites["btelco-a"].agw
        sim.run(until=10.0)
        assert agw.expired_sessions == 1
        assert detached and detached[0] == pytest.approx(5.0, abs=1.0)
        assert manager.ue.state == "DEREGISTERED"
        # The bearer (and its address) was reclaimed.
        assert agw.spgw.active_count == 0

    def test_reattach_before_expiry_survives(self):
        """Switching bTelcos mints a fresh authorization; the old one's
        expiry must not kill the new session."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        net.brokerd.sap.session_ttl = 5.0
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        manager.switch_to("btelco-b")
        sim.run(until=2.0)
        manager.switch_to("btelco-a")  # back on A under a new grant
        sim.run(until=3.0)
        assert manager.ue.state == "ATTACHED"
        # Grants #1 (expires ~6.0) and #2 (~6.0) are stale by 6.5; only
        # the current grant #3 (expires ~7.0) is live.  The stale
        # expiries must not detach the UE...
        sim.run(until=6.5)
        assert manager.ue.state == "ATTACHED"
        # ...but the live grant's expiry eventually does.
        sim.run(until=8.0)
        assert manager.ue.state == "DEREGISTERED"
