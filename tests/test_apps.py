"""Integration tests for the application models over both transports."""

import pytest

from repro.apps import (
    HlsPlayer,
    HlsServer,
    IperfClient,
    IperfServer,
    KIND_MPTCP,
    KIND_QUIC,
    KIND_TCP,
    LEVEL_BITRATES,
    PingClient,
    PingServer,
    WebClient,
    WebServer,
    make_call,
    segment_bytes,
)
from repro.net import CellularPath, Simulator


def make_path(shaper_rate=None, **kwargs):
    sim = Simulator()
    path = CellularPath(sim, shaper_rate=shaper_rate, **kwargs)
    path.assign_ue_address()
    return sim, path


def cb_handover(sim, path, at, gap=0.08, d=0.032, prefix="10.129.0"):
    def go():
        path.detach(interruption_s=gap)
        sim.schedule(gap + d, path.attach, prefix)
    sim.schedule_at(at, go)


class TestPing:
    def test_rtt_reflects_path_latency(self):
        sim, path = make_path()
        PingServer(path.server)
        client = PingClient(path.ue, path.server.address)
        client.start(duration=20)
        sim.run(until=25)
        # 2*(radio 18 ms + core + wan) ~ 48-49 ms
        assert client.stats.p50_ms == pytest.approx(48.0, rel=0.1)
        assert client.stats.loss_rate < 0.05

    def test_pings_lost_during_detachment(self):
        sim, path = make_path()
        PingServer(path.server)
        client = PingClient(path.ue, path.server.address, interval=0.2)
        client.start(duration=20)
        sim.schedule(5.0, path.detach)
        sim.schedule(8.0, path.attach, "10.129.0")
        sim.run(until=25)
        # ~3 s detached at 5 pings/s -> ~15 lost.
        assert client.stats.loss_rate > 0.10
        assert client.stats.received > 50


class TestIperf:
    @pytest.mark.parametrize("kind", [KIND_TCP, KIND_MPTCP, KIND_QUIC])
    def test_policed_throughput(self, kind):
        sim, path = make_path(shaper_rate=2e6)
        IperfServer(kind, path.server)
        client = IperfClient(kind, path.ue, path.server.address)
        client.start()
        sim.run(until=30)
        avg = client.stats.average_mbps(30)
        assert 1.4 < avg < 2.2

    def test_window_and_rates_accounting(self):
        sim, path = make_path(shaper_rate=2e6)
        IperfServer(KIND_TCP, path.server)
        client = IperfClient(KIND_TCP, path.ue, path.server.address)
        client.start()
        sim.run(until=10)
        rates = client.stats.rates_mbps(1.0, 10)
        assert len(rates) == 10
        total_from_bins = sum(rates) * 1e6 / 8  # bytes
        assert total_from_bins == pytest.approx(client.stats.total_bytes,
                                                rel=0.01)
        assert client.stats.window_mbps(2.0, 4.0) > 0

    def test_mptcp_survives_handover_tcp_would_not(self):
        sim, path = make_path(shaper_rate=2e6)
        IperfServer(KIND_MPTCP, path.server)
        client = IperfClient(KIND_MPTCP, path.ue, path.server.address)
        client.start()
        cb_handover(sim, path, at=10.0)
        sim.run(until=25)
        after = client.stats.bytes_between(12.0, 25.0)
        assert after > 1_000_000  # flow continued on the new address


class TestVoip:
    def test_clean_call_is_high_mos(self):
        sim, path = make_path()
        caller, callee = make_call(path.ue, path.server, duration=20)
        sim.run(until=22)
        assert caller.stats.mos > 4.2
        assert callee.stats.mos > 4.2
        assert caller.stats.loss_rate < 0.02

    def test_reinvite_restores_call_after_ip_change(self):
        sim, path = make_path()
        caller, callee = make_call(path.ue, path.server, duration=40)
        cb_handover(sim, path, at=10.0)
        sim.run(until=42)
        assert caller.reinvites_sent == 1
        assert callee.reinvites == 1
        # Packets flowed after the switch (downlink to the new address).
        late_delays = [d for d in caller.stats.delays]
        assert caller.stats.received > 40 / 0.02 * 0.8

    def test_no_reinvite_kills_downlink(self):
        sim, path = make_path()
        caller, callee = make_call(path.ue, path.server, duration=40,
                                   reinvite_on_ip_change=False)
        cb_handover(sim, path, at=10.0)
        sim.run(until=42)
        # The downlink is stuck on the stale address: the caller hears
        # nothing after the switch (~10 s of 40 s received).
        assert caller.stats.received < 0.4 * callee.frames_sent

    def test_handover_degrades_mos_slightly(self):
        sim, path = make_path()
        caller, _ = make_call(path.ue, path.server, duration=60)
        for i, at in enumerate((10.0, 25.0, 40.0)):
            cb_handover(sim, path, at=at,
                        prefix=f"10.{130 + i}.0")
        sim.run(until=62)
        assert 3.5 < caller.stats.mos < 4.45


class TestVideo:
    @pytest.mark.parametrize("kind", [KIND_TCP, KIND_MPTCP, KIND_QUIC])
    def test_day_rate_limits_quality(self, kind):
        sim, path = make_path(shaper_rate=1.2e6)
        HlsServer(kind, path.server)
        player = HlsPlayer(kind, path.ue, path.server.address)
        player.start(duration=60)
        sim.run(until=62)
        assert 1.0 < player.stats.average_level < 3.5
        assert player.stats.segments_downloaded > 10

    def test_fast_path_reaches_top_levels(self):
        sim, path = make_path()  # no policing, 75 Mbps radio
        HlsServer(KIND_TCP, path.server)
        player = HlsPlayer(KIND_TCP, path.ue, path.server.address)
        player.start(duration=60)
        sim.run(until=62)
        assert player.stats.average_level > 4.0
        assert player.stats.rebuffer_events == 0

    def test_buffer_absorbs_handover(self):
        """Table 1's observation: segment buffering makes video least
        sensitive to handovers."""
        sim, path = make_path(shaper_rate=1.2e6)
        HlsServer(KIND_MPTCP, path.server)
        player = HlsPlayer(KIND_MPTCP, path.ue, path.server.address)
        player.start(duration=60)
        cb_handover(sim, path, at=30.0)
        sim.run(until=62)
        assert player.stats.rebuffer_events <= 1

    def test_segment_bytes_ladder(self):
        sizes = [segment_bytes(level) for level in range(len(LEVEL_BITRATES))]
        assert sizes == sorted(sizes)
        assert sizes[0] > 0


class TestWeb:
    @pytest.mark.parametrize("kind", [KIND_TCP, KIND_MPTCP, KIND_QUIC])
    def test_page_load_completes_with_exact_bytes(self, kind):
        sim, path = make_path()
        server = WebServer(kind, path.server)
        client = WebClient(kind, path.ue, path.server.address)
        client.load()
        sim.run(until=30)
        assert client.result is not None
        expected = (client.main_bytes + sum(client.object_sizes))
        assert client.result.bytes_received == expected

    def test_load_time_scales_with_policing(self):
        def load(shaper):
            sim, path = make_path(shaper_rate=shaper)
            WebServer(KIND_TCP, path.server)
            client = WebClient(KIND_TCP, path.ue, path.server.address)
            client.load()
            sim.run(until=60)
            return client.result.load_time

        assert load(1.2e6) > 1.5 * load(6e6)

    def test_mptcp_load_survives_mid_page_handover(self):
        sim, path = make_path(shaper_rate=1.2e6)
        WebServer(KIND_MPTCP, path.server)
        client = WebClient(KIND_MPTCP, path.ue, path.server.address)
        client.load()
        cb_handover(sim, path, at=1.5)
        sim.run(until=60)
        assert client.result is not None
        expected = (client.main_bytes + sum(client.object_sizes))
        assert client.result.bytes_received == expected
