"""Regression tests for ChaosMonkey restore paths under *overlapping*
faults.

Each injector tracks the pre-fault baseline plus the multiset of
currently-applied fault values; restoring one event must recompute the
surviving maximum rather than blindly writing back a snapshot captured
mid-fault.  These tests pin that behavior for outages (link-level
``_down_until`` extension), loss bursts (per-half rate multiset), and
brownouts (broker cost-factor multiset), including full restoration of
the pre-fault state once every overlapping event has ended.
"""

from repro.core.broker import Brokerd
from repro.core.mobility import build_cellbricks_network
from repro.emulation import (
    ChaosMonkey,
    ChaosSchedule,
    brownout,
    loss_burst,
    outage,
)
from repro.net import Simulator


def build():
    sim = Simulator()
    net = build_cellbricks_network(sim, site_names=("btelco-a",))
    return sim, net


class TestOverlappingOutages:
    def test_second_outage_extends_the_first(self):
        sim, net = build()
        link = net.links["btelco-a-broker"]
        monkey = ChaosMonkey(sim, net.links)
        monkey.arm(ChaosSchedule()
                   .add(outage(1.0, 1.0, target="*-broker"))
                   .add(outage(1.5, 2.0, target="*-broker")))
        sim.run(until=2.2)
        # The first outage's deadline (t=2.0) has passed, but the
        # overlapping second one holds the link down until t=3.5.
        assert not link.a_to_b.up and not link.b_to_a.up
        sim.run(until=3.6)
        assert link.a_to_b.up and link.b_to_a.up

    def test_contained_outage_cannot_cut_the_longer_one_short(self):
        sim, net = build()
        link = net.links["btelco-a-broker"]
        monkey = ChaosMonkey(sim, net.links)
        monkey.arm(ChaosSchedule()
                   .add(outage(1.0, 3.0, target="*-broker"))
                   .add(outage(1.5, 0.5, target="*-broker")))
        sim.run(until=2.2)
        # The inner outage ended at t=2.0; its restore must not revive
        # a link the outer outage still holds down until t=4.0.
        assert not link.a_to_b.up and not link.b_to_a.up
        sim.run(until=4.1)
        assert link.a_to_b.up and link.b_to_a.up


class TestOverlappingLossBursts:
    def test_max_rate_wins_and_base_rate_is_restored(self):
        sim, net = build()
        link = net.links["btelco-a-sig-radio"]
        link.a_to_b.loss_rate = link.b_to_a.loss_rate = 0.02
        monkey = ChaosMonkey(sim, net.links)
        monkey.arm(ChaosSchedule()
                   .add(loss_burst(1.0, 2.0, 0.3, target="*-sig-radio"))
                   .add(loss_burst(1.5, 2.0, 0.1, target="*-sig-radio")))
        sim.run(until=1.7)
        # Overlap: the strongest active burst applies, not the sum.
        assert link.a_to_b.loss_rate == 0.3
        assert link.b_to_a.loss_rate == 0.3
        sim.run(until=3.2)
        # The 0.3 burst ended at t=3.0; the surviving 0.1 burst (not the
        # 0.02 baseline, not a stale snapshot of 0.3) now applies.
        assert link.a_to_b.loss_rate == 0.1
        sim.run(until=3.7)
        # All bursts done: exactly the pre-fault baseline, bookkeeping
        # empty.
        assert link.a_to_b.loss_rate == 0.02
        assert link.b_to_a.loss_rate == 0.02
        assert not monkey._loss_active

    def test_weak_burst_inside_strong_burst_leaves_no_residue(self):
        sim, net = build()
        link = net.links["btelco-a-sig-radio"]
        monkey = ChaosMonkey(sim, net.links)
        monkey.arm(ChaosSchedule()
                   .add(loss_burst(1.0, 2.5, 0.5, target="*-sig-radio"))
                   .add(loss_burst(1.5, 0.5, 0.1, target="*-sig-radio")))
        sim.run(until=1.7)
        assert link.a_to_b.loss_rate == 0.5
        sim.run(until=2.2)
        # The weaker burst ended while the stronger one is live: its
        # restore must not drag the rate down.
        assert link.a_to_b.loss_rate == 0.5
        sim.run(until=3.7)
        assert link.a_to_b.loss_rate == 0.0
        assert not monkey._loss_active


class TestOverlappingBrownouts:
    def test_max_factor_wins_and_class_costs_are_restored(self):
        sim, net = build()
        brokerd = net.brokerd
        base = dict(brokerd.processing_costs)
        assert "processing_costs" not in brokerd.__dict__
        monkey = ChaosMonkey(sim, net.links, brokerd=brokerd)
        monkey.arm(ChaosSchedule()
                   .add(brownout(1.0, 2.0, factor=10.0))
                   .add(brownout(1.5, 2.0, factor=4.0)))
        sim.run(until=1.7)
        for message, cost in base.items():
            assert brokerd.processing_costs[message] == cost * 10.0
        sim.run(until=3.2)
        # First brownout over: the surviving 4x factor applies over the
        # *baseline*, not over the 10x-inflated snapshot.
        for message, cost in base.items():
            assert brokerd.processing_costs[message] == cost * 4.0
        sim.run(until=3.7)
        # Fully restored: the instance shadow is gone, the class dict
        # untouched, and other broker instances were never affected.
        assert "processing_costs" not in brokerd.__dict__
        assert dict(brokerd.processing_costs) == base
        assert dict(Brokerd.processing_costs) == base
        assert monkey._brownout_active is None

    def test_instance_override_is_restored_not_popped(self):
        sim, net = build()
        brokerd = net.brokerd
        custom = {message: cost * 2.0 for message, cost
                  in brokerd.processing_costs.items()}
        brokerd.processing_costs = custom   # pre-existing instance dict
        monkey = ChaosMonkey(sim, net.links, brokerd=brokerd)
        monkey.arm(ChaosSchedule().add(brownout(1.0, 1.0, factor=5.0)))
        sim.run(until=1.5)
        for message, cost in custom.items():
            assert brokerd.processing_costs[message] == cost * 5.0
        sim.run(until=2.5)
        # The brownout restores the operator's instance override, not
        # the class default.
        assert brokerd.__dict__["processing_costs"] is custom
        assert monkey._brownout_active is None
