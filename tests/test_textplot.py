"""Tests for the terminal plot helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import bar_chart, sparkline, timeline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_intensity(self):
        line = sparkline([0, 5, 10], maximum=10)
        levels = " .:-=+*#%@"
        assert levels.index(line[0]) <= levels.index(line[1]) \
            <= levels.index(line[2])

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_explicit_maximum_scales(self):
        relative = sparkline([5], maximum=10)
        absolute = sparkline([5], maximum=5)
        levels = " .:-=+*#%@"
        assert levels.index(relative) < levels.index(absolute)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_never_crashes(self, values):
        out = sparkline(values)
        assert len(out) == len(values)


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == ""

    def test_rows_and_scaling(self):
        chart = bar_chart({"BL": 100.0, "CB": 50.0}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_printed(self):
        chart = bar_chart({"x": 36.85}, unit="ms")
        assert "36.85ms" in chart


class TestTimeline:
    def test_empty(self):
        assert timeline([]) == ""

    def test_has_marker_row(self):
        chart = timeline([1, 2, 3, 2, 1], markers=[2])
        assert chart.splitlines()[0][2] == "v"

    def test_peak_annotated(self):
        chart = timeline([1.0, 4.5, 2.0])
        assert "4.50" in chart

    def test_downsampling_bounds_width(self):
        chart = timeline(list(range(200)), width=50)
        row = chart.splitlines()[1]
        assert len(row) <= 50 + 1

    def test_column_heights_monotone(self):
        chart = timeline([1, 2, 4], height=4)
        rows = chart.splitlines()[1:-2]
        # Highest value fills the top row; lowest does not.
        assert rows[0][2] == "#"
        assert rows[0][0] == " "
