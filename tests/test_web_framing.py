"""Focused tests for the web app's in-band framing, TLS setup, and waves."""

import pytest

from repro.apps import KIND_MPTCP, KIND_TCP, WebClient, WebServer
from repro.apps.web import (
    DEFAULT_OBJECT_BYTES,
    REQUEST_SIZE,
    TLS_HELLO_SIZE,
)
from repro.net import CellularPath, Simulator
from repro.net.tcp import DEFAULT_MSS


def make_path(**kwargs):
    sim = Simulator()
    path = CellularPath(sim, **kwargs)
    path.assign_ue_address()
    return sim, path


class TestFraming:
    def test_hello_fits_one_segment(self):
        """The size-encoded framing relies on single-segment atomicity."""
        assert TLS_HELLO_SIZE <= DEFAULT_MSS
        assert REQUEST_SIZE + len(DEFAULT_OBJECT_BYTES) + 1 < TLS_HELLO_SIZE

    def test_server_counts_requests_and_handshakes(self):
        sim, path = make_path()
        server = WebServer(KIND_TCP, path.server)
        client = WebClient(KIND_TCP, path.ue, path.server.address)
        client.load()
        sim.run(until=30)
        # main + every object, one request each.
        assert server.requests_served == 1 + len(DEFAULT_OBJECT_BYTES)
        assert server.handshakes == client.parallel

    def test_resource_size_mapping(self):
        sim, path = make_path()
        server = WebServer(KIND_TCP, path.server, main_bytes=111,
                           object_bytes=(10, 20, 30))
        assert server.resource_size(0) == 111
        assert server.resource_size(1) == 10
        assert server.resource_size(3) == 30


class TestWaves:
    def test_waves_partition_all_objects(self):
        sim, path = make_path()
        WebServer(KIND_TCP, path.server)
        client = WebClient(KIND_TCP, path.ue, path.server.address,
                           waves=(0.5, 0.3, 0.2))
        flattened = [i for wave in client._waves for i in wave]
        assert sorted(flattened) == list(
            range(1, len(client.object_sizes) + 1))

    def test_single_wave_works(self):
        sim, path = make_path()
        WebServer(KIND_TCP, path.server)
        client = WebClient(KIND_TCP, path.ue, path.server.address,
                           waves=(1.0,))
        client.load()
        sim.run(until=30)
        assert client.result is not None

    def test_more_waves_slower_on_fast_path(self):
        """Waves serialize discovery: on a latency-bound path more waves
        mean a longer load."""
        def load(waves):
            sim, path = make_path()
            WebServer(KIND_TCP, path.server)
            client = WebClient(KIND_TCP, path.ue, path.server.address,
                               waves=waves)
            client.load()
            sim.run(until=30)
            return client.result.load_time

        assert load((0.34, 0.33, 0.33)) > load((1.0,))


class TestLoadResult:
    @pytest.mark.parametrize("kind", [KIND_TCP, KIND_MPTCP])
    def test_bytes_exclude_tls(self, kind):
        sim, path = make_path()
        WebServer(kind, path.server)
        client = WebClient(kind, path.ue, path.server.address)
        client.load()
        sim.run(until=30)
        expected = client.main_bytes + sum(client.object_sizes)
        assert client.result.bytes_received == expected

    def test_on_loaded_callback(self):
        sim, path = make_path()
        WebServer(KIND_TCP, path.server)
        client = WebClient(KIND_TCP, path.ue, path.server.address)
        results = []
        client.on_loaded = results.append
        client.load()
        sim.run(until=30)
        assert results == [client.result]

    def test_repeated_loads_same_server(self):
        sim, path = make_path()
        WebServer(KIND_TCP, path.server)
        times = []
        for _ in range(3):
            client = WebClient(KIND_TCP, path.ue, path.server.address)
            client.load()
            sim.run(until=sim.now + 30)
            times.append(client.result.load_time)
        assert len(times) == 3
        assert all(t > 0 for t in times)
