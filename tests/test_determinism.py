"""Determinism guarantees: same seed, bit-identical results.

The README promises seeded, reproducible experiments; these tests hold
the main harnesses to it (and catch accidental global-RNG usage or
dict-ordering dependencies).
"""

import random

from repro.emulation import EmulationConfig, PairedEmulation
from repro.emulation.radio import CapacityProcess, generate_handover_schedule
from repro.emulation.routes import ROUTES
from repro.net import Simulator
from repro.ran import corridor_deployment, simulate_drive, straight_drive
from repro.testbed import run_attach_benchmark


class TestScheduleDeterminism:
    def test_handover_schedule_identical(self):
        a = generate_handover_schedule(500, 50, seed=123)
        b = generate_handover_schedule(500, 50, seed=123)
        assert a == b

    def test_capacity_process_identical(self):
        conditions = ROUTES["downtown"].night
        a = CapacityProcess(Simulator(), conditions, seed=9)
        b = CapacityProcess(Simulator(), conditions, seed=9)
        assert [a.sample() for _ in range(200)] == \
            [b.sample() for _ in range(200)]

    def test_different_seeds_differ(self):
        conditions = ROUTES["downtown"].night
        a = CapacityProcess(Simulator(), conditions, seed=9)
        b = CapacityProcess(Simulator(), conditions, seed=10)
        assert [a.sample() for _ in range(50)] != \
            [b.sample() for _ in range(50)]


class TestEmulationDeterminism:
    def _run(self):
        sim = Simulator()
        config = EmulationConfig(route="highway", time_of_day="day",
                                 duration=40, seed=77)
        emulation = PairedEmulation(sim, config)
        stats = emulation.run_iperf()
        return (stats["mno"].total_bytes, stats["cellbricks"].total_bytes,
                tuple(e.at for e in emulation.handover_events))

    def test_paired_emulation_bit_identical(self):
        assert self._run() == self._run()


class TestAttachDeterminism:
    def test_attach_benchmark_identical(self):
        a = run_attach_benchmark("CB", "us-west-1", trials=3)
        b = run_attach_benchmark("CB", "us-west-1", trials=3)
        assert [s.total_ms for s in a.samples] == \
            [s.total_ms for s in b.samples]


class TestRanDeterminism:
    def test_drive_log_identical(self):
        def run():
            deployment = corridor_deployment(5000, 800,
                                             rng=random.Random(5))
            log = simulate_drive(deployment, straight_drive(5000, 12.0),
                                 seed=6)
            return [(h.at, h.to_operator) for h in log.handovers]

        # PCIs are globally sequential, but shadowing seeds mix the pci
        # *and* the caller seed, so repeated builds must still agree on
        # everything observable.
        first, second = run(), run()
        assert [at for at, _ in first] == [at for at, _ in second]
        assert [op for _, op in first] == [op for _, op in second]
