"""End-to-end billing: reports flow over the network into brokerd.

Exercises the full §4.3 loop on the wire: the UE attaches via SAP, both
meters measure, the bTelco's AGW uploads its signed reports over the
signaling plane, brokerd ingests and cross-checks them, and settlement
pays the verified amount.
"""

import pytest

from repro.core.billing import REPORTER_UE
from repro.core.mobility import MobilityManager, build_cellbricks_network
from repro.core.settlement import SettlementEngine, make_claim
from repro.net import Simulator


def attach_and_meter(dl_bytes=5_000_000, ul_bytes=500_000,
                     telco_fraud=1.0):
    sim = Simulator()
    net = build_cellbricks_network(sim)
    manager = MobilityManager(net)
    manager.start("btelco-a")
    sim.run(until=1.0)
    assert manager.ue.state == "ATTACHED"

    agw = net.sites["btelco-a"].agw
    session_id = manager.ue.session_id
    bearer = agw.spgw.bearer_for(agw.sessions[session_id].id_u_opaque)

    # Simulate a usage interval observed by both sides.
    bearer.usage.dl_bytes = dl_bytes
    bearer.usage.ul_bytes = ul_bytes
    agw.meters[session_id].fraud_factor = telco_fraud
    manager.ue.meter.record_dl(dl_bytes)
    manager.ue.meter.record_ul(ul_bytes)

    # Both reports ride the network to brokerd.
    assert agw.upload_reports() == 1
    ue_upload = manager.ue.meter.emit(sim.now)
    # The UE sends its report via its serving bTelco's data path; at the
    # signaling level that reaches brokerd's report handler.
    net.brokerd.billing.ingest(ue_upload, now=sim.now)
    sim.run(until=2.0)
    return sim, net, manager, agw, session_id


class TestBillingOverTheWire:
    def test_honest_interval_settles_cleanly(self):
        sim, net, manager, agw, session_id = attach_and_meter()
        ledger = net.brokerd.billing.sessions[session_id]
        assert ledger.checked_pairs == 1
        assert ledger.mismatches == 0
        invoice = net.brokerd.billing.settle(session_id)
        assert invoice.dl_bytes == 5_000_000
        assert not invoice.disputed

    def test_btelco_report_rides_signaling_plane(self):
        sim, net, manager, agw, session_id = attach_and_meter()
        ledger = net.brokerd.billing.sessions[session_id]
        # The bTelco's report arrived via the Brokerd message handler.
        assert 0 in ledger.btelco_reports
        assert ledger.btelco_reports[0].dl_bytes == 5_000_000

    def test_lost_report_upload_retried_until_acked(self):
        """A report eaten by the broker link must be retransmitted, not
        silently skew the §4.3 cross-check: the broker ends up with the
        pair matched, ``reports_retried`` counts the recovery, and
        ``reports_lost`` stays 0."""
        sim = Simulator()
        net = build_cellbricks_network(sim)
        manager = MobilityManager(net)
        manager.start("btelco-a")
        sim.run(until=1.0)
        agw = net.sites["btelco-a"].agw
        session_id = manager.ue.session_id
        bearer = agw.spgw.bearer_for(agw.sessions[session_id].id_u_opaque)
        bearer.usage.dl_bytes = 1_000_000
        manager.ue.meter.record_dl(1_000_000)

        net.links["btelco-a-broker"].interrupt(0.3)   # eats the upload
        assert agw.upload_reports() == 1
        net.brokerd.billing.ingest(manager.ue.meter.emit(sim.now),
                                   now=sim.now)
        sim.run(until=sim.now + 5.0)

        stats = net.brokerd.stats()
        assert stats["reports_retried"] >= 1
        assert stats["reports_lost"] == 0
        assert agw.stats()["reports_acked"] == 1
        ledger = net.brokerd.billing.sessions[session_id]
        assert ledger.checked_pairs == 1
        assert ledger.mismatches == 0

    def test_inflating_btelco_detected_over_the_wire(self):
        sim, net, manager, agw, session_id = attach_and_meter(
            telco_fraud=1.5)
        ledger = net.brokerd.billing.sessions[session_id]
        assert ledger.mismatches == 1
        assert not net.brokerd.reputation.btelco_acceptable("btelco-a") \
            or net.brokerd.reputation.btelco_score("btelco-a") < 1.0

    def test_settlement_pays_verified_not_claimed(self):
        sim, net, manager, agw, session_id = attach_and_meter(
            telco_fraud=2.0)
        engine = SettlementEngine(net.brokerd.billing)
        engine.register_btelco("btelco-a", agw.key.public_key)
        # The bTelco claims its (inflated) numbers.
        claim = make_claim(session_id, "btelco-a", 10_000_000, 1_000_000,
                           agw.key)
        payment = engine.process_claim(claim)
        assert payment.disputed
        # Paid for what the UE verified (5 MB + 0.5 MB), not 11 MB.
        verified = 5_500_000 / 1e9 * engine.wholesale_per_gb
        assert payment.paid == pytest.approx(verified, rel=0.01)

    def test_detection_compounds_into_denial(self):
        """Sustained over-reporting eventually blocks future attaches."""
        sim, net, manager, agw, session_id = attach_and_meter(
            telco_fraud=1.5)
        # More fraudulent intervals on the same session.
        for _ in range(4):
            bearer = agw.spgw.bearer_for(
                agw.sessions[session_id].id_u_opaque)
            bearer.usage.dl_bytes = 1_000_000
            agw.upload_reports()
            manager.ue.meter.record_dl(1_000_000)
            net.brokerd.billing.ingest(manager.ue.meter.emit(sim.now),
                                       now=sim.now)
            sim.run(until=sim.now + 0.5)
        assert not net.brokerd.reputation.btelco_acceptable("btelco-a")
        # The next attach attempt against this bTelco is denied.
        results = []
        manager.ue.on_attach_done = results.append
        manager.switch_to("btelco-b")
        sim.run(until=sim.now + 1.0)
        assert results[-1].success  # B is clean
        manager.switch_to("btelco-a")
        sim.run(until=sim.now + 1.0)
        assert not results[-1].success
        assert "reputation" in results[-1].cause
