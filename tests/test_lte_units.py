"""Unit tests for LTE building blocks: identifiers, bearers, NAS sizes,
the signaling framework, and the eNodeB relay."""

import pytest

from repro.lte import (
    ENodeB,
    Imsi,
    ImsiGenerator,
    Plmn,
    S1DownlinkNas,
    S1UeContextRelease,
    SgwPgw,
    Tai,
    TEST_PLMN,
)
from repro.lte.bearer import BearerError
from repro.lte.nas import (
    AttachAccept,
    AttachRequest,
    SapAttachRequest,
    message_size,
)
from repro.lte.signaling import SignalingEnvelope, SignalingNode
from repro.net import Host, Link, Simulator


class TestIdentifiers:
    def test_plmn_validation(self):
        Plmn("310", "410")
        Plmn("001", "01")
        with pytest.raises(ValueError):
            Plmn("31", "410")
        with pytest.raises(ValueError):
            Plmn("310", "4")
        with pytest.raises(ValueError):
            Plmn("abc", "01")

    def test_imsi_string_form(self):
        imsi = Imsi(TEST_PLMN, "123456789")
        assert str(imsi) == "00101123456789"

    def test_imsi_validation(self):
        with pytest.raises(ValueError):
            Imsi(TEST_PLMN, "123")
        with pytest.raises(ValueError):
            Imsi(TEST_PLMN, "12345678901234")

    def test_generator_produces_unique_imsis(self):
        gen = ImsiGenerator()
        values = {str(gen.next()) for _ in range(100)}
        assert len(values) == 100

    def test_tai_format(self):
        assert str(Tai(TEST_PLMN, 0x1234)) == "00101-1234"


class TestSgwPgw:
    def test_default_bearer_allocates_ip(self):
        spgw = SgwPgw(pool_prefix="10.55.0")
        bearer = spgw.create_default_bearer("imsi-1", qci=9,
                                            ambr_dl_bps=1e6,
                                            ambr_ul_bps=1e6)
        assert bearer.ue_ip.startswith("10.55.0.")
        assert bearer.active
        assert spgw.active_count == 1

    def test_reattach_replaces_bearer(self):
        spgw = SgwPgw()
        first = spgw.create_default_bearer("s", 9, 1e6, 1e6)
        second = spgw.create_default_bearer("s", 9, 1e6, 1e6)
        assert not first.active
        assert spgw.active_count == 1
        assert spgw.bearer_for("s") is second

    def test_delete_releases_ip_for_reuse(self):
        spgw = SgwPgw()
        bearer = spgw.create_default_bearer("s", 9, 1e6, 1e6)
        ip = bearer.ue_ip
        spgw.delete_bearer(bearer.ebi)
        assert spgw.bearer_for("s") is None
        # The released address returns to the pool (LRU reuse).
        assert spgw.pool.allocated_count == 0
        again = spgw.create_default_bearer("s2", 9, 1e6, 1e6)
        assert spgw.pool.owns(again.ue_ip)

    def test_delete_unknown_raises(self):
        with pytest.raises(BearerError):
            SgwPgw().delete_bearer(99)

    def test_usage_counters(self):
        spgw = SgwPgw()
        bearer = spgw.create_default_bearer("s", 9, 1e6, 1e6)
        bearer.usage.record_dl(1000)
        bearer.usage.record_dl(500)
        bearer.usage.record_ul(200)
        assert bearer.usage.dl_bytes == 1500
        assert bearer.usage.dl_packets == 2
        assert bearer.usage.ul_bytes == 200

    def test_teids_unique(self):
        spgw = SgwPgw()
        a = spgw.create_default_bearer("a", 9, 1e6, 1e6)
        b = spgw.create_default_bearer("b", 9, 1e6, 1e6)
        teids = {a.s1_teid_ul, a.s1_teid_dl, b.s1_teid_ul, b.s1_teid_dl}
        assert len(teids) == 4


class TestNasSizes:
    def test_known_messages_have_sizes(self):
        assert message_size(AttachRequest(imsi="001011234567890")) == 120
        assert message_size(SapAttachRequest(auth_req_u=None)) > \
            message_size(AttachRequest(imsi="001011234567890"))

    def test_unknown_message_gets_default(self):
        class Strange:
            pass
        assert message_size(Strange()) == 64


def build_signaling_pair():
    sim = Simulator()
    a = Host(sim, "a", address="10.0.0.1")
    b = Host(sim, "b", address="10.0.0.2")
    Link(sim, "ab", a, b, bandwidth_bps=1e9, delay_s=0.001)
    return sim, a, b


class Hello:
    pass


class TestSignalingNode:
    def test_handler_dispatch_with_processing_cost(self):
        sim, a, b = build_signaling_pair()
        sender = SignalingNode(a, "sender")
        receiver = SignalingNode(b, "receiver")
        receiver.processing_costs = {Hello: 0.005}
        seen = []
        receiver.on(Hello, lambda src, msg: seen.append(sim.now))
        sender.send("10.0.0.2", Hello())
        sim.run(until=1.0)
        # 1 ms propagation + 5 ms processing.
        assert seen and seen[0] == pytest.approx(0.006, rel=0.05)
        assert receiver.module_time == pytest.approx(0.005)
        assert receiver.messages_handled == 1

    def test_unhandled_messages_counted_not_crashing(self):
        sim, a, b = build_signaling_pair()
        sender = SignalingNode(a, "sender")
        receiver = SignalingNode(b, "receiver")
        sender.send("10.0.0.2", Hello())
        sim.run(until=1.0)
        assert receiver.messages_handled == 0

    def test_default_handler_catches_all(self):
        sim, a, b = build_signaling_pair()
        sender = SignalingNode(a, "sender")
        receiver = SignalingNode(b, "receiver")
        caught = []
        receiver.default_handler = lambda src, msg: caught.append(type(msg))
        sender.send("10.0.0.2", Hello())
        sim.run(until=1.0)
        assert caught == [Hello]

    def test_charge_accumulates(self):
        sim, a, b = build_signaling_pair()
        node = SignalingNode(a, "n")
        node.charge(0.003)
        node.charge(0.002)
        assert node.module_time == pytest.approx(0.005)


class TestEnodebRelay:
    def test_uplink_assigns_stable_ue_ids(self):
        sim, ue_host, enb_host = build_signaling_pair()
        # agw on a third host
        agw_host = Host(sim, "agw", address="10.0.1.1")
        Link(sim, "backhaul", enb_host, agw_host,
             bandwidth_bps=1e9, delay_s=0.001)
        enb_host.add_route("10.0.1", enb_host.links[1])
        enb_host.add_route("10.0.0", enb_host.links[0])
        enb = ENodeB(enb_host, agw_ip="10.0.1.1")
        agw = SignalingNode(agw_host, "agw")
        uplinks = []
        agw.default_handler = lambda src, msg: uplinks.append(msg)
        ue = SignalingNode(ue_host, "ue")

        ue.send("10.0.0.2", AttachRequest(imsi="001011234567890"))
        ue.send("10.0.0.2", AttachRequest(imsi="001011234567890"))
        sim.run(until=1.0)
        assert len(uplinks) == 2
        assert uplinks[0].enb_ue_id == uplinks[1].enb_ue_id
        assert uplinks[0].initial and not uplinks[1].initial
        assert enb.connected_ues == 1

    def test_context_release_forgets_ue(self):
        sim, ue_host, enb_host = build_signaling_pair()
        agw_host = Host(sim, "agw", address="10.0.1.1")
        Link(sim, "backhaul", enb_host, agw_host,
             bandwidth_bps=1e9, delay_s=0.001)
        enb_host.add_route("10.0.1", enb_host.links[1])
        enb_host.add_route("10.0.0", enb_host.links[0])
        enb = ENodeB(enb_host, agw_ip="10.0.1.1")
        agw = SignalingNode(agw_host, "agw")
        received = []
        agw.default_handler = lambda src, msg: received.append(msg)
        ue = SignalingNode(ue_host, "ue")
        ue.send("10.0.0.2", AttachRequest(imsi="001011234567890"))
        sim.run(until=0.5)
        ue_id = received[0].enb_ue_id
        agw.send("10.0.0.2", S1UeContextRelease(enb_ue_id=ue_id))
        sim.run(until=1.0)
        assert enb.connected_ues == 0
        # Downlink to a released UE is silently dropped.
        agw.send("10.0.0.2", S1DownlinkNas(
            enb_ue_id=ue_id,
            nas=AttachAccept(guti=None, ue_ip="1.2.3.4", bearer_id=5,
                             qci=9, ambr_dl_bps=1e6, ambr_ul_bps=1e6)))
        sim.run(until=1.5)
        assert enb.relayed_downlink == 0
