"""Unit tests for hosts, routers, and UDP sockets."""

import pytest

from repro.net import Host, Link, Packet, Router, Simulator, UdpSocket
from repro.net.packet import PROTO_UDP, UNSPECIFIED


def linked_pair(sim, a_addr="10.0.0.1", b_addr="10.0.0.2", delay=0.001):
    a = Host(sim, "a", address=a_addr)
    b = Host(sim, "b", address=b_addr)
    link = Link(sim, "ab", a, b, bandwidth_bps=1e9, delay_s=delay)
    return a, b, link


class TestHostAddressing:
    def test_set_address_notifies_listeners(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        events = []
        host.add_address_listener(lambda old, new: events.append((old, new)))
        host.set_address("2.2.2.2")
        host.invalidate_address()
        assert events == [("1.1.1.1", "2.2.2.2"), ("2.2.2.2", UNSPECIFIED)]

    def test_same_address_no_notification(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        events = []
        host.add_address_listener(lambda old, new: events.append(new))
        host.set_address("1.1.1.1")
        assert events == []

    def test_remove_listener(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        events = []
        listener = lambda old, new: events.append(new)
        host.add_address_listener(listener)
        host.remove_address_listener(listener)
        host.set_address("2.2.2.2")
        assert events == []

    def test_packets_to_wrong_address_dropped(self):
        sim = Simulator()
        a, b, _ = linked_pair(sim)
        received = []
        sock = UdpSocket(b, 9)
        sock.on_datagram = lambda *args: received.append(args)
        sender = UdpSocket(a)
        sender.send_to("10.0.0.99", 9, 100)  # not b's address
        sim.run(until=1.0)
        assert received == []

    def test_no_address_cannot_send(self):
        sim = Simulator()
        a, b, _ = linked_pair(sim)
        a.invalidate_address()
        sock = UdpSocket(a)
        assert not sock.send_to("10.0.0.2", 9, 100)

    def test_ephemeral_ports_unique(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        ports = {host.allocate_port() for _ in range(100)}
        assert len(ports) == 100

    def test_duplicate_bind_rejected(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        UdpSocket(host, 9)
        with pytest.raises(ValueError):
            UdpSocket(host, 9)

    def test_closed_socket_unbinds(self):
        sim = Simulator()
        host = Host(sim, "h", address="1.1.1.1")
        sock = UdpSocket(host, 9)
        sock.close()
        UdpSocket(host, 9)  # rebinding now succeeds

    def test_multihomed_route_selection(self):
        sim = Simulator()
        hub = Host(sim, "hub", address="10.0.0.1")
        left = Host(sim, "left", address="10.1.0.2")
        right = Host(sim, "right", address="10.2.0.2")
        link_left = Link(sim, "l", hub, left, bandwidth_bps=1e9,
                         delay_s=0.001)
        link_right = Link(sim, "r", hub, right, bandwidth_bps=1e9,
                          delay_s=0.001)
        hub.add_route("10.1.0", link_left)
        hub.add_route("10.2.0", link_right)
        got = {"left": 0, "right": 0}
        for name, host in (("left", left), ("right", right)):
            sock = UdpSocket(host, 9)
            sock.on_datagram = (lambda n: lambda *a: got.__setitem__(
                n, got[n] + 1))(name)
        sender = UdpSocket(hub)
        sender.send_to("10.1.0.2", 9, 100)
        sender.send_to("10.2.0.2", 9, 100)
        sim.run(until=1.0)
        assert got == {"left": 1, "right": 1}


class TestRouter:
    def build(self):
        sim = Simulator()
        router = Router(sim, "r")
        a = Host(sim, "a", address="10.1.0.2")
        b = Host(sim, "b", address="10.2.0.2")
        link_a = Link(sim, "ra", router, a, bandwidth_bps=1e9,
                      delay_s=0.001)
        link_b = Link(sim, "rb", router, b, bandwidth_bps=1e9,
                      delay_s=0.001)
        router.add_route("10.1.0", link_a)
        router.add_route("10.2.0", link_b)
        return sim, router, a, b

    def test_forwards_between_hosts(self):
        sim, router, a, b = self.build()
        received = []
        sock_b = UdpSocket(b, 9)
        sock_b.on_datagram = lambda *args: received.append(args)
        sock_a = UdpSocket(a)
        sock_a.send_to("10.2.0.2", 9, 100)
        sim.run(until=1.0)
        assert len(received) == 1
        assert router.forwarded == 1

    def test_no_route_drops(self):
        sim, router, a, b = self.build()
        sock_a = UdpSocket(a)
        sock_a.send_to("10.99.0.1", 9, 100)
        sim.run(until=1.0)
        assert router.dropped == 1

    def test_default_route(self):
        sim, router, a, b = self.build()
        router.set_default_route(router.links[1])  # towards b
        received = []
        sock_b = UdpSocket(b, 9)
        sock_b.on_datagram = lambda *args: received.append(args)
        # b is not 10.99.* but the default route points its way; host b
        # will drop it (wrong dst), so check the router forwarded it.
        sock_a = UdpSocket(a)
        sock_a.send_to("10.99.0.1", 9, 100)
        sim.run(until=1.0)
        assert router.forwarded == 1

    def test_ttl_exhaustion(self):
        sim, router, a, b = self.build()
        packet = Packet(src="10.1.0.2", dst="10.2.0.2", protocol=PROTO_UDP,
                        size=100, ttl=0)
        router.receive(packet, router.links[0])
        assert router.dropped == 1

    def test_no_hairpin(self):
        """A packet is never forwarded back out its incoming link."""
        sim, router, a, b = self.build()
        packet = Packet(src="10.1.0.9", dst="10.1.0.2", protocol=PROTO_UDP,
                        size=100)
        router.receive(packet, router.links[0])  # arrived from a's link
        assert router.dropped == 1

    def test_remove_route(self):
        sim, router, a, b = self.build()
        router.remove_route("10.2.0")
        sock_a = UdpSocket(a)
        sock_a.send_to("10.2.0.2", 9, 100)
        sim.run(until=1.0)
        assert router.dropped == 1
