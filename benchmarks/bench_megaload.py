"""XTRA-MEGALOAD — the event engine under a population-scale workload.

The paper's premise only matters at population scale, so this drives
the discrete-event core with hundreds of bTelco sites and 10^5
scripted UEs (arrival/mobility/diurnal models) and compares the legacy
per-action event core against the batched tick-calendar engine with
heap compaction and the adaptive broker window.  Acceptance shape: the
optimized engine clears the legacy one by at least 2x UEs/sec at
identical workload outcomes (digest-checked under a pinned window).
"""

from conftest import bench_scale, print_header

from repro.testbed.megaload import run_cell, run_megaload


def _print_cells(report: dict) -> None:
    print(f"{'engine':10s} {'UEs/s':>10s} {'wall s':>8s} {'s/sim-s':>9s} "
          f"{'RSS MB':>8s} {'events':>9s}")
    for cell in report["cells"]:
        perf = cell["perf"]
        print(f"{cell['engine']:10s} {perf['ues_per_sec']:10.0f} "
              f"{perf['wall_s']:8.2f} {perf['wall_per_sim_second']:9.5f} "
              f"{perf['peak_rss_mb']:8.1f} {perf['events_processed']:9d}")
    if "speedup" in report:
        print(f"  optimized vs legacy: {report['speedup']['speedup']:.2f}x")


def test_megaload_engines(benchmark):
    ues = 100_000 if bench_scale() >= 1.0 else 20_000
    report = benchmark.pedantic(run_megaload, kwargs=dict(ues=ues),
                                rounds=1, iterations=1)
    print_header("XTRA-MEGALOAD - population-scale workload, both engines")
    _print_cells(report)
    for cell in report["cells"]:
        assert cell["workload"]["arrived"] == ues
        assert cell["workload"]["attach_ok"] > 0
    # The two engines must simulate the same population (identical
    # deterministic counters modulo the window policy's latency shifts).
    legacy, optimized = (next(c for c in report["cells"]
                              if c["engine"] == e)
                         for e in ("legacy", "optimized"))
    for key in ("arrived", "moves", "departed"):
        assert legacy["workload"][key] == optimized["workload"][key]
    assert report["speedup"]["speedup"] >= 2.0, report["speedup"]


def test_megaload_engine_equivalence(benchmark):
    """With the broker window pinned to the fixed 2 ms, the batched
    engine replays the legacy engine's workload outcome exactly."""
    def _pair():
        legacy = run_cell(ues=5000, sites=64, engine="legacy")
        optimized = run_cell(ues=5000, sites=64, engine="optimized",
                             adaptive=False)
        return legacy, optimized

    legacy, optimized = benchmark.pedantic(_pair, rounds=1, iterations=1)
    print_header("XTRA-MEGALOAD - engine equivalence (pinned window)")
    print(f"legacy    digest={legacy['digest'][:16]}")
    print(f"optimized digest={optimized['digest'][:16]}")
    assert legacy["digest"] == optimized["digest"]
    assert legacy["workload"] == optimized["workload"]
