"""XTRA-QUIC — host-mobility transports compared (§4.2's future work).

The paper's prototype uses MPTCP; §4.2 names QUIC as the other
standardized option and the incremental-deployment story falls back to
plain TCP + L7 restart.  This bench runs the same controlled-handover
drive over all three and reports the recovery gap (time with no delivered
bytes around a bTelco switch) and the throughput cost.

Expected shape: QUIC migrates fastest (no worker wait, no handshake),
MPTCP with the default 500 ms wait is next, plain TCP (connection dies,
L7 Range restart) is slowest — yet all three complete, which is the
architectural point: mobility is recoverable entirely at the host.
"""

from conftest import print_header

from repro.analysis.stats import mean
from repro.apps import IperfClient, IperfServer, KIND_MPTCP, KIND_QUIC
from repro.apps.fallback import RangeDownloadServer, RangeRestartDownloader
from repro.emulation import DEFAULT_ATTACH_LATENCY
from repro.net import CellularPath, Simulator

DURATION = 60.0
HANDOVER_TIMES = (15.0, 35.0)
SHAPER = 3e6


def _drive(run_client):
    """Run one transport through the controlled-handover drive.

    ``run_client(sim, path)`` must return a callable giving the delivery
    log [(t, nbytes)].
    """
    sim = Simulator()
    path = CellularPath(sim, shaper_rate=SHAPER, shaper_burst=2e5)
    path.assign_ue_address()
    get_deliveries = run_client(sim, path)
    for index, at in enumerate(HANDOVER_TIMES):
        def go(prefix=f"10.{130 + index}.0"):
            path.detach(interruption_s=0.08)
            sim.schedule(0.08 + DEFAULT_ATTACH_LATENCY, path.attach, prefix)
        sim.schedule_at(at, go)
    sim.run(until=DURATION)
    deliveries = get_deliveries()
    gaps = []
    for at in HANDOVER_TIMES:
        before = max((t for t, _ in deliveries if t < at), default=at)
        after = min((t for t, _ in deliveries if t > at),
                    default=DURATION)
        gaps.append(after - before)
    total = sum(n for _, n in deliveries)
    return mean(gaps), total * 8 / DURATION / 1e6


def _stream_client(kind):
    def run(sim, path):
        IperfServer(kind, path.server)
        client = IperfClient(kind, path.ue, path.server.address)
        client.start()
        return lambda: client.stats.deliveries
    return run


def _tcp_fallback(sim, path):
    log = []
    RangeDownloadServer(path.server, 10**9)
    # A legacy (unmodified) app: notices the dead connection only after
    # an application-level timeout, then resumes with a Range request.
    client = RangeRestartDownloader(path.ue, path.server.address, 10**9,
                                    restart_delay=1.0)
    original = client._on_data

    def tracking(nbytes, meta):
        log.append((sim.now, nbytes))
        original(nbytes, meta)

    client._on_data = tracking
    client.start()

    # Rebind: the downloader wires on_data per connection, so patch the
    # class-level path by wrapping _open_connection.
    open_connection = client._open_connection

    def wrapped_open():
        open_connection()
        inner = client._conn
        inner.on_data = tracking

    client._open_connection = wrapped_open
    if client._conn is not None:
        client._conn.on_data = tracking
    return lambda: log


def _sweep():
    return {
        "QUIC (migration)": _drive(_stream_client(KIND_QUIC)),
        "MPTCP (unmod., 500ms wait)": _drive(_stream_client(KIND_MPTCP)),
        "TCP + HTTP Range restart": _drive(_tcp_fallback),
    }


def test_transport_handover_comparison(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_header("XTRA-QUIC - handover recovery by transport")
    print(f"{'transport':28s} {'recovery gap':>13s} {'avg Mbps':>9s}")
    for name, (gap, mbps) in results.items():
        print(f"{name:28s} {gap:12.3f}s {mbps:9.2f}")

    quic_gap = results["QUIC (migration)"][0]
    mptcp_gap = results["MPTCP (unmod., 500ms wait)"][0]
    tcp_gap = results["TCP + HTTP Range restart"][0]
    # Shape: QUIC < MPTCP < TCP-restart; QUIC beats the 500 ms wait.
    assert quic_gap < mptcp_gap < tcp_gap
    assert quic_gap < 0.5
    # All transports keep moving data (no one collapses).
    for name, (gap, mbps) in results.items():
        assert mbps > 0.5 * SHAPER / 1e6 * 0.5
