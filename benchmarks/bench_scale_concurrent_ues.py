"""XTRA-SCALE — attachment under load (the paper's claim that CellBricks
"scales to a large number of users under different radio conditions").

N CellBricks UEs attach to one bTelco site (through one brokerd) within a
short arrival window; we report the attach-latency distribution vs N and
compare against the same load on the legacy baseline.
"""

from conftest import print_header

from repro.analysis.stats import mean, percentile
from repro.core import Brokerd, CellBricksAgw, CellBricksUe, UeSapCredentials
from repro.core.qos import QosCapabilities
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte import (
    Agw,
    ENodeB,
    ImsiGenerator,
    SubscriberDb,
    TEST_PLMN,
    UeNas,
    UsimState,
)
from repro.net import Host, Link, Simulator
from repro.testbed.placement import (
    AGW_ADDRESS,
    CLOUD_DB_ADDRESS,
    ENB_ADDRESS,
    TestbedTopology,
)

UE_COUNTS = (1, 10, 50, 100)
ARRIVAL_WINDOW = 1.0   # all N UEs start attaching within this window


def _add_ue_host(sim, topology, index):
    host = Host(sim, f"ue{index}", address=f"10.{2 + index // 200}."
                                           f"{index % 200}.2")
    link = Link(sim, f"radio{index}", host, topology.enb_host,
                bandwidth_bps=1e9, delay_s=0.0001)
    prefix = host.address.rsplit(".", 1)[0]
    topology.enb_host.add_route(prefix, link)
    return host


def _run_cellbricks(n: int) -> list:
    sim = Simulator()
    topology = TestbedTopology.build(sim, "us-west-1")
    ca = CertificateAuthority(key=pooled_keypair(920))
    brokerd = Brokerd(topology.db_host, id_b="b.scale",
                      ca_public_key=ca.public_key, key=pooled_keypair(921))
    telco_key = pooled_keypair(922)
    cert = ca.issue("t.scale", "btelco", telco_key.public_key)
    agw = CellBricksAgw(topology.agw_host, broker_ip=CLOUD_DB_ADDRESS,
                        id_t="t.scale", key=telco_key, certificate=cert,
                        ca_public_key=ca.public_key,
                        qos_capabilities=QosCapabilities())
    agw.trust_broker("b.scale", brokerd.public_key)
    ENodeB(topology.enb_host, agw_ip=AGW_ADDRESS)

    latencies = []
    ue_key = pooled_keypair(923)  # subscribers share a pool key (sim-only)
    for index in range(n):
        subscriber = f"sub-{index}"
        brokerd.enroll_subscriber(subscriber, ue_key.public_key)
        host = _add_ue_host(sim, topology, index)
        creds = UeSapCredentials(id_u=subscriber, id_b="b.scale",
                                 ue_key=ue_key,
                                 broker_public_key=brokerd.public_key)
        ue = CellBricksUe(host, ENB_ADDRESS, creds, target_id_t="t.scale")
        ue.on_attach_done = lambda r: latencies.append(r.latency * 1000)
        sim.schedule(ARRIVAL_WINDOW * index / max(n, 1), ue.attach)
    sim.run(until=60.0)
    assert len(latencies) == n, f"only {len(latencies)}/{n} attached"
    return latencies


def _run_baseline(n: int) -> list:
    sim = Simulator()
    topology = TestbedTopology.build(sim, "us-west-1")
    db = SubscriberDb(topology.db_host)
    agw = Agw(topology.agw_host, subscriber_db_ip=CLOUD_DB_ADDRESS)
    ENodeB(topology.enb_host, agw_ip=AGW_ADDRESS)
    generator = ImsiGenerator()
    latencies = []
    for index in range(n):
        imsi = generator.next()
        record = db.provision(imsi)
        host = _add_ue_host(sim, topology, index)
        ue = UeNas(host, ENB_ADDRESS, imsi, UsimState(k=record.k),
                   str(TEST_PLMN))
        ue.on_attach_done = lambda r: latencies.append(r.latency * 1000)
        sim.schedule(ARRIVAL_WINDOW * index / max(n, 1), ue.attach)
    sim.run(until=60.0)
    assert len(latencies) == n
    return latencies


def _sweep():
    rows = []
    for n in UE_COUNTS:
        cb = _run_cellbricks(n)
        bl = _run_baseline(n)
        rows.append((n, mean(bl), percentile(bl, 99),
                     mean(cb), percentile(cb, 99)))
    return rows


def test_scale_concurrent_attaches(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_header("XTRA-SCALE - concurrent attaches (us-west-1 broker/DB)")
    print(f"{'UEs':>5s} {'BL mean':>9s} {'BL p99':>9s} "
          f"{'CB mean':>9s} {'CB p99':>9s}  (ms)")
    for n, bl_mean, bl_p99, cb_mean, cb_p99 in rows:
        print(f"{n:5d} {bl_mean:9.2f} {bl_p99:9.2f} "
              f"{cb_mean:9.2f} {cb_p99:9.2f}")

    # Shape: every UE attaches; CB stays cheaper than BL at every load
    # (one cloud RTT vs two, and less AGW work to queue behind); latency
    # grows with load but degrades gracefully, not cliff-like.
    for n, bl_mean, bl_p99, cb_mean, cb_p99 in rows:
        assert cb_mean < bl_mean
    single = rows[0]
    heaviest = rows[-1]
    assert heaviest[3] > single[3]        # contention is visible...
    assert heaviest[4] < 3000.0           # ...but 100 UEs still land <3 s
