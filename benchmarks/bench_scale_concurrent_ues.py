"""XTRA-SCALE — attachment under load (the paper's claim that CellBricks
"scales to a large number of users under different radio conditions").

N CellBricks UEs attach to one bTelco site (through one brokerd) within a
short arrival window; we report the attach-latency distribution vs N and
compare against the same load on the legacy baseline.
"""

from conftest import print_header

from repro.analysis.stats import mean, percentile
from repro.core import Brokerd, CellBricksAgw, CellBricksUe, UeSapCredentials
from repro.core.qos import QosCapabilities
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte import (
    Agw,
    ENodeB,
    ImsiGenerator,
    SubscriberDb,
    TEST_PLMN,
    UeNas,
    UsimState,
)
from repro.net import Host, Link, Simulator
from repro.testbed.placement import (
    AGW_ADDRESS,
    CLOUD_DB_ADDRESS,
    ENB_ADDRESS,
    TestbedTopology,
)

UE_COUNTS = (1, 10, 50, 100)
ARRIVAL_WINDOW = 1.0   # all N UEs start attaching within this window

CHURN_ATTACHES = 10_000
CHURN_TTL = 50.0       # broker session lifetime (seconds, sim time)
CHURN_INTERVAL = 1.0   # one attach per sim-second
CHURN_SUBSCRIBERS = 32


def _add_ue_host(sim, topology, index):
    host = Host(sim, f"ue{index}", address=f"10.{2 + index // 200}."
                                           f"{index % 200}.2")
    link = Link(sim, f"radio{index}", host, topology.enb_host,
                bandwidth_bps=1e9, delay_s=0.0001)
    prefix = host.address.rsplit(".", 1)[0]
    topology.enb_host.add_route(prefix, link)
    return host


def _run_cellbricks(n: int) -> list:
    sim = Simulator()
    topology = TestbedTopology.build(sim, "us-west-1")
    ca = CertificateAuthority(key=pooled_keypair(920))
    brokerd = Brokerd(topology.db_host, id_b="b.scale",
                      ca_public_key=ca.public_key, key=pooled_keypair(921))
    telco_key = pooled_keypair(922)
    cert = ca.issue("t.scale", "btelco", telco_key.public_key)
    agw = CellBricksAgw(topology.agw_host, broker_ip=CLOUD_DB_ADDRESS,
                        id_t="t.scale", key=telco_key, certificate=cert,
                        ca_public_key=ca.public_key,
                        qos_capabilities=QosCapabilities())
    agw.trust_broker("b.scale", brokerd.public_key)
    ENodeB(topology.enb_host, agw_ip=AGW_ADDRESS)

    latencies = []
    ue_key = pooled_keypair(923)  # subscribers share a pool key (sim-only)
    for index in range(n):
        subscriber = f"sub-{index}"
        brokerd.enroll_subscriber(subscriber, ue_key.public_key)
        host = _add_ue_host(sim, topology, index)
        creds = UeSapCredentials(id_u=subscriber, id_b="b.scale",
                                 ue_key=ue_key,
                                 broker_public_key=brokerd.public_key)
        ue = CellBricksUe(host, ENB_ADDRESS, creds, target_id_t="t.scale")
        ue.on_attach_done = lambda r: latencies.append(r.latency * 1000)
        sim.schedule(ARRIVAL_WINDOW * index / max(n, 1), ue.attach)
    sim.run(until=60.0)
    assert len(latencies) == n, f"only {len(latencies)}/{n} attached"
    return latencies


def _run_baseline(n: int) -> list:
    sim = Simulator()
    topology = TestbedTopology.build(sim, "us-west-1")
    db = SubscriberDb(topology.db_host)
    agw = Agw(topology.agw_host, subscriber_db_ip=CLOUD_DB_ADDRESS)
    ENodeB(topology.enb_host, agw_ip=AGW_ADDRESS)
    generator = ImsiGenerator()
    latencies = []
    for index in range(n):
        imsi = generator.next()
        record = db.provision(imsi)
        host = _add_ue_host(sim, topology, index)
        ue = UeNas(host, ENB_ADDRESS, imsi, UsimState(k=record.k),
                   str(TEST_PLMN))
        ue.on_attach_done = lambda r: latencies.append(r.latency * 1000)
        sim.schedule(ARRIVAL_WINDOW * index / max(n, 1), ue.attach)
    sim.run(until=60.0)
    assert len(latencies) == n
    return latencies


def _sweep():
    rows = []
    for n in UE_COUNTS:
        cb = _run_cellbricks(n)
        bl = _run_baseline(n)
        rows.append((n, mean(bl), percentile(bl, 99),
                     mean(cb), percentile(cb, 99)))
    return rows


def test_scale_concurrent_attaches(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_header("XTRA-SCALE - concurrent attaches (us-west-1 broker/DB)")
    print(f"{'UEs':>5s} {'BL mean':>9s} {'BL p99':>9s} "
          f"{'CB mean':>9s} {'CB p99':>9s}  (ms)")
    for n, bl_mean, bl_p99, cb_mean, cb_p99 in rows:
        print(f"{n:5d} {bl_mean:9.2f} {bl_p99:9.2f} "
              f"{cb_mean:9.2f} {cb_p99:9.2f}")

    # Shape: every UE attaches; CB stays cheaper than BL at every load
    # (one cloud RTT vs two, and less AGW work to queue behind); latency
    # grows with load but degrades gracefully, not cliff-like.
    for n, bl_mean, bl_p99, cb_mean, cb_p99 in rows:
        assert cb_mean < bl_mean
    single = rows[0]
    heaviest = rows[-1]
    assert heaviest[3] > single[3]        # contention is visible...
    assert heaviest[4] < 3000.0           # ...but 100 UEs still land <3 s


def _run_churn(attaches: int):
    """Long-haul attach churn against one BrokerSap (no network sim):
    rotate subscribers, revoke one mid-run, track peak lifecycle state."""
    from repro.core.sap import (
        BrokerSap,
        BrokerSubscriber,
        BtelcoSap,
        BtelcoSapConfig,
        SapError,
        UeSap,
        UeSapCredentials,
    )

    ca = CertificateAuthority(key=pooled_keypair(920))
    broker_key = pooled_keypair(921)
    telco_key = pooled_keypair(922)
    ue_key = pooled_keypair(923)
    cert = ca.issue("t.churn", "btelco", telco_key.public_key)
    broker = BrokerSap(id_b="b.churn", key=broker_key,
                       ca_public_key=ca.public_key, session_ttl=CHURN_TTL)
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t.churn", key=telco_key, certificate=cert,
        qos_capabilities=QosCapabilities(), ca_public_key=ca.public_key))
    ues = []
    for index in range(CHURN_SUBSCRIBERS):
        id_u = f"sub-{index}"
        broker.enroll(BrokerSubscriber(id_u=id_u,
                                       public_key=ue_key.public_key))
        ues.append(UeSap(UeSapCredentials(
            id_u=id_u, id_b="b.churn", ue_key=ue_key,
            broker_public_key=broker_key.public_key)))

    revoke_at = attaches // 2
    peak_nonces = peak_grants = 0
    revoked_grants = denied_after_revoke = 0
    for attach in range(attaches):
        now = attach * CHURN_INTERVAL
        index = attach % CHURN_SUBSCRIBERS
        req_t = telco.augment_request(ues[index].craft_request("t.churn"))
        try:
            broker.process_request(req_t, now=now)
        except SapError:
            denied_after_revoke += 1
        if attach == revoke_at:
            # Revoke the subscriber that just attached: its live grants
            # must vanish now, not at natural expiry.
            revoked_grants = len(broker.revoke(f"sub-{index}"))
        peak_nonces = max(peak_nonces, len(broker._seen_nonces))
        peak_grants = max(peak_grants, len(broker.grants))
    return dict(stats=broker.stats(), peak_nonces=peak_nonces,
                peak_grants=peak_grants, revoked_grants=revoked_grants,
                denied_after_revoke=denied_after_revoke,
                attaches=attaches)


def test_attach_churn_bounded_state(benchmark, scale):
    attaches = max(200, int(CHURN_ATTACHES * scale))
    result = benchmark.pedantic(_run_churn, args=(attaches,),
                                rounds=1, iterations=1)

    stats = result["stats"]
    active_bound = int(CHURN_TTL / CHURN_INTERVAL) + 1
    print_header("XTRA-SCALE - attach churn (bounded lifecycle state)")
    print(f"attaches {result['attaches']}, ttl {CHURN_TTL:.0f}s, "
          f"{CHURN_SUBSCRIBERS} subscribers")
    print(f"peak replay cache {result['peak_nonces']:5d}  "
          f"(active-session bound {active_bound})")
    print(f"peak grants       {result['peak_grants']:5d}  "
          f"(active-session bound {active_bound})")
    print(f"grants expired {stats['grants_expired']}, "
          f"revoked {stats['grants_revoked']}, "
          f"final active {stats['grants_active']}")

    # The tentpole claim: broker state tracks *active* sessions, not
    # attach history.  10k attaches, yet both structures stay near the
    # ~51-session live window.
    assert result["peak_nonces"] <= active_bound
    assert result["peak_grants"] <= active_bound
    assert stats["replay_cache_size"] <= active_bound
    # The mid-run revocation cascaded to live grants and the suspended
    # subscriber was denied on every later attempt.
    assert result["revoked_grants"] >= 1
    assert result["denied_after_revoke"] > 0
    assert stats["attach_denied"].get("suspended", 0) \
        == result["denied_after_revoke"]
    assert stats["attach_ok"] + result["denied_after_revoke"] \
        == result["attaches"]
