"""XTRA-BILL — verifiable-billing ablation (§4.3 / Fig 5 design).

The paper's prototype defers the reputation system; this bench evaluates
the design it describes: how reliably the broker's cross-check detects a
dishonest bTelco as a function of the over-count factor and the tolerance
ratio epsilon, and how the reputation score responds over time.
"""

import random

from conftest import print_header

from repro.core.billing import (
    BillingVerifier,
    REPORTER_BTELCO,
    REPORTER_UE,
    TrafficReport,
    make_upload,
)
from repro.core.qos import QosInfo
from repro.core.sap import SapGrant
from repro.crypto.keypool import pooled_keypair

FRAUD_FACTORS = (1.0, 1.05, 1.10, 1.25, 1.5, 2.0)
EPSILONS = (0.02, 0.05, 0.10)
REPORTS_PER_RUN = 30


def _detection_rate(fraud: float, epsilon: float, seed: int = 0) -> float:
    """Fraction of report pairs flagged when the bTelco inflates DL usage
    by ``fraud`` under honest-UE reporting with mild radio loss."""
    rng = random.Random(seed)
    broker_key = pooled_keypair(910)
    ue_key = pooled_keypair(911)
    telco_key = pooled_keypair(912)
    verifier = BillingVerifier(broker_key=broker_key, epsilon=epsilon)
    grant = SapGrant(id_u="u", id_u_opaque="anon", id_t="t",
                     session_id="s", ss=b"s" * 32, qos_info=QosInfo(),
                     granted_at=0.0, expires_at=1e9)
    verifier.open_session(grant, ue_public_key=ue_key.public_key,
                          btelco_public_key=telco_key.public_key)
    for seq in range(REPORTS_PER_RUN):
        true_dl = rng.randint(500_000, 5_000_000)
        loss = rng.uniform(0.0, 0.02)
        ue_report = TrafficReport(
            session_id="s", seq=seq, interval_start=seq * 30.0,
            interval_end=(seq + 1) * 30.0, ul_bytes=true_dl // 10,
            dl_bytes=int(true_dl * (1 - loss)), dl_loss_rate=loss)
        t_report = TrafficReport(
            session_id="s", seq=seq, interval_start=seq * 30.0,
            interval_end=(seq + 1) * 30.0, ul_bytes=true_dl // 10,
            dl_bytes=int(true_dl * fraud))
        verifier.ingest(make_upload(ue_report, REPORTER_UE, ue_key,
                                    broker_key.public_key), now=seq * 30.0)
        verifier.ingest(make_upload(t_report, REPORTER_BTELCO, telco_key,
                                    broker_key.public_key), now=seq * 30.0)
    ledger = verifier.sessions["s"]
    return ledger.mismatches / ledger.checked_pairs, verifier


def _sweep():
    table = {}
    for epsilon in EPSILONS:
        for fraud in FRAUD_FACTORS:
            rate, verifier = _detection_rate(fraud, epsilon)
            table[(epsilon, fraud)] = (
                rate, verifier.reputation.btelco_score("t"),
                verifier.reputation.btelco_acceptable("t"))
    return table


def test_billing_fraud_detection_sweep(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print_header("XTRA-BILL - over-count detection rate and reputation")
    print(f"{'epsilon':>8s} " + "".join(f"{f:>9.2f}x" for f in FRAUD_FACTORS))
    for epsilon in EPSILONS:
        row = f"{epsilon:>8.2f} "
        for fraud in FRAUD_FACTORS:
            rate, _, _ = table[(epsilon, fraud)]
            row += f"{rate * 100:>9.0f}%"
        print(row)
    print("\nreputation score / admitted after 30 reports (epsilon=0.05):")
    for fraud in FRAUD_FACTORS:
        _, score, ok = table[(0.05, fraud)]
        print(f"  {fraud:4.2f}x -> score {score:.3f} "
              f"{'ADMITTED' if ok else 'BLOCKED'}")

    # Shape: honest parties never flagged; large fraud always caught and
    # eventually blocked; detection monotone in fraud, epsilon raises the
    # detection threshold.
    for epsilon in EPSILONS:
        honest_rate, _, _ = table[(epsilon, 1.0)]
        assert honest_rate == 0.0
        big_rate, _, admitted = table[(epsilon, 2.0)]
        assert big_rate == 1.0
        assert not admitted
    assert table[(0.02, 1.05)][0] >= table[(0.10, 1.05)][0]
