"""FIG8 — iperf throughput around a handover (paper Fig 8).

MNO (TCP, IP preserved) vs emulated CellBricks (MPTCP, IP change with the
default 500 ms wait), day-time conditions, 1-second bins over a 50 s run
with a handover near second 23.

Paper shape: MPTCP drops near zero at the handover (the 500 ms wait),
ramps back via slow-start, briefly overshoots the TCP flow, then both
track each other.
"""

from conftest import print_header

from repro.analysis.stats import mean
from repro.emulation import run_figure8


def _run():
    return run_figure8()


def test_fig8_handover_timeline(benchmark, scale):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("FIG 8 - throughput timeline around a handover (day)")
    print(f"handover at t={result.handover_at:.1f}s")
    print(f"{'bin':>9s} {'MNO Mbps':>9s} {'CB Mbps':>9s}")
    for t, mno, cb in zip(result.timestamps, result.mno_mbps,
                          result.cb_mbps):
        marker = "  <- handover" if t - 1 <= result.handover_at < t else ""
        print(f"[{t - 1:3.0f},{t:3.0f}) {mno:9.2f} {cb:9.2f}{marker}")

    ho_bin = int(result.handover_at)
    steady_cb = mean(result.cb_mbps[5:ho_bin - 1])
    dip = result.cb_mbps[ho_bin]
    post = max(result.cb_mbps[ho_bin + 1:ho_bin + 4])
    tail_mno = mean(result.mno_mbps[ho_bin + 6:])
    tail_cb = mean(result.cb_mbps[ho_bin + 6:])
    print(f"\nsteady {steady_cb:.2f}, dip {dip:.2f}, "
          f"post-handover peak {post:.2f}, tails mno {tail_mno:.2f} / "
          f"cb {tail_cb:.2f}")

    assert dip < 0.7 * steady_cb          # visible dip at the handover
    assert post > 1.1 * steady_cb         # the overshoot spike
    assert abs(tail_cb - tail_mno) < 0.35 * tail_mno  # re-convergence
