"""T1 — application performance, MNO vs CellBricks (paper Table 1).

Regenerates the full table: 3 routes x day/night, with MTTHO, ping p50,
iperf throughput, VoIP MOS, HLS video quality level, and web page load
time for both architectures, plus the overall slowdown row.

Paper shapes that must hold: overall slowdown within about -1.6%..+3.1%;
day throughput ~1.1-1.25 Mbps vs night ~11-17 Mbps; video least
sensitive; highway MTTHO shortest.
"""

from conftest import print_header

from repro.emulation import DAY, NIGHT, render_table1, run_table1
from repro.emulation.driver import Table1Result

PAPER_SLOWDOWN_BOUNDS = (-8.0, 8.0)   # generous envelope around -1.6..3.1


def _run(duration_scale: float) -> Table1Result:
    return run_table1(seed=1, duration_scale=duration_scale)


def test_table1_applications(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)

    print_header(f"TABLE 1 - application performance (duration x{scale})")
    print(render_table1(result))
    print()
    print("Paper reference rows (MNO vs CellBricks, D/N):")
    print("  iperf Mbps : suburb 1.25/17.27 vs 1.20/16.85 | "
          "downtown 1.14/16.54 vs 1.11/15.41 | highway 1.10/11.38 vs 1.11/12.42")
    print("  VoIP MOS   : ~4.3-4.4 everywhere, CB within 0.1")
    print("  video lvl  : day ~2.0, night ~4.9")
    print("  web load s : day ~4.8-5.2, night ~1.8-1.9")
    print("  overall slowdown: iperf 2.06/3.06, voip 1.15/0.92, "
          "video 0.51/-0.20, web 2.60/-1.61 (%)")

    for cell in result.cells:
        mno_day = cell.iperf_mbps["mno"]
        if cell.time_of_day == DAY:
            assert 0.8 < mno_day < 1.6, f"day iperf off: {cell}"
        else:
            assert 8.0 < mno_day < 22.0, f"night iperf off: {cell}"
        assert 3.5 < cell.voip_mos["mno"] <= 4.5
        assert 3.5 < cell.voip_mos["cellbricks"] <= 4.5

    for metric, lower_is_better in (("iperf_mbps", False),
                                    ("voip_mos", False),
                                    ("video_level", False),
                                    ("web_load_s", True)):
        for tod in (DAY, NIGHT):
            slowdown = result.overall_slowdown(metric, tod,
                                               lower_is_better=lower_is_better)
            low, high = PAPER_SLOWDOWN_BOUNDS
            assert low < slowdown < high, \
                f"{metric}/{tod} slowdown {slowdown:.2f}% out of envelope"
