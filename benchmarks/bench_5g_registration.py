"""XTRA-5G — registration latency under the 5G core.

The paper's architecture is generation-agnostic; this bench repeats the
Fig 7 experiment over a 5G standalone core.  The baseline pays **two**
visited↔home round trips (AUSF/UDM vector fetch + the home-controlled
RES* confirmation); CellBricks pays one broker round trip — so its
relative win should *exceed* the 4G numbers at every remote placement.
"""

from conftest import print_header

from repro.analysis.stats import mean
from repro.core import Brokerd, UeSapCredentials
from repro.core.btelco5g import CellBricksAmf, CellBricksUe5G
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.fivegc import Amf, Ausf, Gnb, Smf, Udm, Ue5G, make_supi
from repro.fivegc.topology5g import (
    AMF_ADDRESS,
    AUSF_ADDRESS,
    BROKER_ADDRESS,
    GNB_ADDRESS,
    SMF_ADDRESS,
    Topology5G,
    UDM_ADDRESS,
)
from repro.lte.aka import UsimState
from repro.net import Simulator

PLACEMENT_ORDER = ("local", "us-west-1", "us-east-1")
K = bytes(range(16))

# The corresponding 4G results for comparison (paper Fig 7).
FOURG_GAIN = {"us-west-1": 0.14, "us-east-1": 0.408}


def _register_many(arch: str, placement: str, trials: int) -> float:
    """Mean registration latency (ms) over repeated register cycles."""
    sim = Simulator()
    topo = Topology5G.build(sim, placement)
    if arch == "BL":
        home_key = pooled_keypair(830)
        udm = Udm(topo.udm_host, home_network_key=home_key)
        Ausf(topo.ausf_host, udm_ip=UDM_ADDRESS)
        Smf(topo.smf_host)
        amf = Amf(topo.amf_host, ausf_ip=AUSF_ADDRESS, smf_ip=SMF_ADDRESS)
        Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
        supi = make_supi(3)
        udm.provision(supi, K)

        def fresh_ue():
            return Ue5G(topo.ue_host, GNB_ADDRESS, supi, UsimState(
                k=K, highest_sqn=udm.subscribers[str(supi)].sqn),
                home_key.public_key, serving_network=amf.serving_network,
                name=f"ue-{sim.now}")
    else:
        ca = CertificateAuthority(key=pooled_keypair(831))
        brokerd = Brokerd(topo.broker_host, id_b="b5g",
                          ca_public_key=ca.public_key,
                          key=pooled_keypair(832))
        telco_key = pooled_keypair(833)
        cert = ca.issue("t5g", "btelco", telco_key.public_key)
        Smf(topo.smf_host)
        amf = CellBricksAmf(topo.amf_host, broker_ip=BROKER_ADDRESS,
                            smf_ip=SMF_ADDRESS, id_t="t5g", key=telco_key,
                            certificate=cert, ca_public_key=ca.public_key)
        amf.trust_broker("b5g", brokerd.public_key)
        Gnb(topo.gnb_host, agw_ip=AMF_ADDRESS)
        ue_key = pooled_keypair(834)
        brokerd.enroll_subscriber("bench5g", ue_key.public_key)
        credentials = UeSapCredentials(
            id_u="bench5g", id_b="b5g", ue_key=ue_key,
            broker_public_key=brokerd.public_key)

        def fresh_ue():
            return CellBricksUe5G(topo.ue_host, GNB_ADDRESS, credentials,
                                  target_id_t="t5g",
                                  name=f"ue-{sim.now}")

    latencies = []
    for trial in range(trials):
        ue = fresh_ue()
        results = []
        ue.on_registration_done = results.append
        ue.register()
        sim.run(until=sim.now + 1.0)
        assert results and results[0].success, \
            f"{arch}/{placement}: {results and results[0].cause}"
        latencies.append(results[0].latency * 1000)
        ue.socket.close()
    return mean(latencies)


def _sweep(trials: int):
    table = {}
    for placement in PLACEMENT_ORDER:
        for arch in ("BL", "CB"):
            table[(arch, placement)] = _register_many(arch, placement,
                                                      trials)
    return table


def test_5g_registration_latency(benchmark, scale):
    trials = max(3, int(20 * scale))
    table = benchmark.pedantic(_sweep, args=(trials,), rounds=1,
                               iterations=1)

    print_header(f"XTRA-5G - registration latency ({trials} trials)")
    print(f"{'placement':11s} {'5G BL':>9s} {'5G CB':>9s} {'CB gain':>9s} "
          f"{'4G gain':>9s}")
    for placement in PLACEMENT_ORDER:
        bl = table[("BL", placement)]
        cb = table[("CB", placement)]
        gain = (bl - cb) / bl
        fourg = FOURG_GAIN.get(placement)
        print(f"{placement:11s} {bl:8.2f}m {cb:8.2f}m {gain * 100:8.1f}% "
              f"{fourg * 100 if fourg else float('nan'):8.1f}%")

    # Shapes: CB wins at remote placements, and by MORE than it does in
    # 4G (two home RTTs replaced instead of two DB RTs with one cheaper).
    for placement, fourg_gain in FOURG_GAIN.items():
        bl = table[("BL", placement)]
        cb = table[("CB", placement)]
        gain = (bl - cb) / bl
        assert gain > 0.8 * fourg_gain
    assert abs(table[("BL", "local")] - table[("CB", "local")]) < 8.0