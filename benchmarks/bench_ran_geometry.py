"""XTRA-RAN — geometry-driven drives and cell-selection ablation (§4.2).

Two studies on the geometric RAN model:

1. **Emergent MTTHO**: drives through corridor deployments whose
   inter-site distance / speed mirror the paper's three routes produce
   mean-time-to-handover in the same regime Table 1 measured — i.e. the
   calibrated stochastic schedules used elsewhere are geometrically
   plausible.
2. **Selection ablation**: the paper argues UE-driven handover "can
   perform smarter cell selection based on the list of neighbor cells
   learned from the network" and benefits from standard damping; we sweep
   hysteresis / time-to-trigger and the neighbor-list restriction and
   report handover counts (ping-pong suppression) and end-to-end iperf
   throughput over the geometry-driven emulation.
"""

import random

from conftest import print_header

from repro.analysis.stats import mean
from repro.emulation import ARCH_CELLBRICKS, ARCH_MNO
from repro.emulation.geo import GeoPairedEmulation
from repro.net import Simulator
from repro.ran import corridor_deployment, simulate_drive, straight_drive

# Route geometry mirroring the paper's three environments: denser sites,
# slower movement, and deeper shadowing downtown; sparse fast highway;
# open (mild-shadowing) suburb.
ROUTE_GEOMETRY = {
    #           length,  ISD, speed, shadow sigma, paper night MTTHO
    "suburb": (12000, 1400, 13.0, 4.0, 65.60),
    "downtown": (8000, 900, 9.0, 7.0, 50.60),
    "highway": (24000, 1500, 31.0, 5.0, 25.50),
}

ABLATIONS = (
    ("no damping", dict(hysteresis_db=0.0, time_to_trigger_s=0.0)),
    ("A3 default", dict(hysteresis_db=3.0, time_to_trigger_s=0.64)),
    ("A3 + neighbor list", dict(hysteresis_db=3.0, time_to_trigger_s=0.64,
                                use_neighbor_list=True)),
    ("heavy damping", dict(hysteresis_db=6.0, time_to_trigger_s=1.28)),
)


def _drive(route: str, seed: int = 21, **selection):
    length, isd, speed, sigma, _ = ROUTE_GEOMETRY[route]
    deployment = corridor_deployment(
        length, isd, operators=("bt-a", "bt-b", "bt-c"),
        shadowing_sigma_db=sigma, rng=random.Random(seed))
    return simulate_drive(deployment, straight_drive(length, speed),
                          seed=seed, **selection)


MTTHO_SEEDS = (21, 22, 23, 24)


def _mttho_study():
    """Average the per-drive MTTHO over several drive realizations (a
    single drive's handover count is small, so one seed is noisy)."""
    rows = []
    for route, (_, isd, speed, _, paper) in ROUTE_GEOMETRY.items():
        logs = [_drive(route, seed=seed) for seed in MTTHO_SEEDS]
        mttho = mean([log.mttho for log in logs])
        op_switches = sum(log.operator_switches for log in logs)
        handovers = sum(log.handover_count for log in logs)
        rows.append((route, isd, speed, mttho, paper,
                     op_switches, handovers))
    return rows


def test_ran_emergent_mttho(benchmark):
    rows = benchmark.pedantic(_mttho_study, rounds=1, iterations=1)

    print_header("XTRA-RAN (1) - emergent MTTHO from geometry")
    print(f"{'route':9s} {'ISD(m)':>7s} {'speed':>6s} {'MTTHO':>8s} "
          f"{'paper':>7s} {'op-switch/handover':>19s}")
    for route, isd, speed, mttho, paper, op_switches, handovers in rows:
        print(f"{route:9s} {isd:7.0f} {speed:6.1f} {mttho:8.1f} "
              f"{paper:7.1f} {op_switches:9d}/{handovers:<9d}")

    by_route = {r[0]: r for r in rows}
    # Shape: highway crosses towers much faster than the suburb; every
    # MTTHO lands within a factor ~2 of the paper's measurement for its
    # route.  (Downtown and highway can swap under shadowing noise, as
    # the paper's own day/night MTTHOs also overlap across routes.)
    assert by_route["highway"][3] < by_route["suburb"][3]
    for route, _, _, mttho, paper, op_switches, handovers in rows:
        assert 0.4 * paper < mttho < 2.5 * paper
        # Multi-operator corridors: most switches cross operators.
        assert op_switches >= handovers * 0.4


EMULATED_SECONDS = 150.0   # emulate the first 150 s of each drive


def _ablation_study():
    from repro.emulation import EmulationConfig

    results = []
    for name, selection in ABLATIONS:
        log = _drive("downtown", **selection)
        sim = Simulator()
        config = EmulationConfig(route="downtown", time_of_day="night",
                                 duration=EMULATED_SECONDS, seed=3,
                                 handovers=False)
        # Scale the clean geometric capacity down to loaded-cell levels
        # so wall-clock stays sane and numbers are night-like.
        emulation = GeoPairedEmulation(sim, log, config=config,
                                       capacity_scale=0.45, seed=3)
        duration = emulation.config.duration
        stats = emulation.run_iperf()
        handovers_in_window = sum(1 for h in log.handovers
                                  if h.at < EMULATED_SECONDS)
        results.append((
            name, log.handover_count, handovers_in_window,
            stats[ARCH_MNO].average_mbps(duration),
            stats[ARCH_CELLBRICKS].average_mbps(duration)))
    return results


def test_ran_selection_ablation(benchmark):
    results = benchmark.pedantic(_ablation_study, rounds=1, iterations=1)

    print_header("XTRA-RAN (2) - cell-selection ablation (downtown drive)")
    print(f"{'policy':22s} {'handovers':>9s} {'in-window':>9s} "
          f"{'MNO Mbps':>9s} {'CB Mbps':>9s} {'CB cost':>8s}")
    for name, handovers, in_window, mno, cb in results:
        cost = (mno - cb) / mno * 100 if mno else 0.0
        print(f"{name:22s} {handovers:9d} {in_window:9d} {mno:9.2f} "
              f"{cb:9.2f} {cost:7.2f}%")

    by_name = dict((r[0], r) for r in results)
    # Damping suppresses ping-pong...
    assert by_name["A3 default"][1] < by_name["no damping"][1]
    assert by_name["heavy damping"][1] <= by_name["A3 default"][1]
    # ...and since every CellBricks handover is a detach/re-attach, fewer
    # handovers means lower mobility cost for CB.
    undamped_cost = by_name["no damping"][3] - by_name["no damping"][4]
    damped_cost = by_name["A3 default"][3] - by_name["A3 default"][4]
    assert damped_cost <= undamped_cost + 0.5
