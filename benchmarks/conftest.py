"""Shared benchmark configuration.

Every benchmark regenerates one table or figure from the paper and prints
the corresponding rows/series next to the paper's published values.  Set
``REPRO_BENCH_SCALE`` (default 1.0) to shrink or grow run durations /
trial counts, e.g. ``REPRO_BENCH_SCALE=0.3 pytest benchmarks/
--benchmark-only`` for a quick pass.
"""

import os

import pytest


def bench_scale() -> float:
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


@pytest.fixture()
def scale() -> float:
    return bench_scale()


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
