"""XTRA-SAP — protocol micro-benchmarks (supporting §4.1 / §5's claim
that SAP's crypto adds negligible overhead).

Measures the real (wall-clock) cost of each SAP step against the EPS-AKA
operations it replaces, plus the SAP message sizes.  These are genuine
pytest-benchmark measurements (many rounds), unlike the one-shot
experiment regenerators.
"""

import random

from conftest import print_header

from repro.core.messages import AuthVec
from repro.core.qos import QosCapabilities
from repro.core.sap import (
    BrokerSap,
    BrokerSubscriber,
    BtelcoSap,
    BtelcoSapConfig,
    UeSap,
    UeSapCredentials,
)
from repro.crypto import CertificateAuthority
from repro.crypto.keypool import pooled_keypair
from repro.lte.aka import UsimState, generate_auth_vector, usim_authenticate


def _world():
    ca = CertificateAuthority(key=pooled_keypair(900))
    broker_key = pooled_keypair(901)
    telco_key = pooled_keypair(902)
    ue_key = pooled_keypair(903)
    cert = ca.issue("t1", "btelco", telco_key.public_key)
    broker = BrokerSap(id_b="b", key=broker_key,
                       ca_public_key=ca.public_key)
    broker.enroll(BrokerSubscriber(id_u="u", public_key=ue_key.public_key))
    telco = BtelcoSap(BtelcoSapConfig(
        id_t="t1", key=telco_key, certificate=cert,
        qos_capabilities=QosCapabilities(),
        ca_public_key=ca.public_key))
    creds = UeSapCredentials(id_u="u", id_b="b", ue_key=ue_key,
                             broker_public_key=broker_key.public_key)
    return broker, telco, creds, broker_key


def test_sap_ue_craft_request(benchmark):
    _, _, creds, _ = _world()
    ue = UeSap(creds)
    benchmark(ue.craft_request, "t1")


def test_sap_btelco_augment(benchmark):
    _, telco, creds, _ = _world()
    req_u = UeSap(creds).craft_request("t1")
    benchmark(telco.augment_request, req_u)


def test_sap_broker_process(benchmark):
    broker, telco, creds, _ = _world()
    ue = UeSap(creds)

    def run():
        req_u = ue.craft_request("t1")  # fresh nonce each round
        req_t = telco.augment_request(req_u)
        return broker.process_request(req_t, now=1.0)

    benchmark(run)


def test_sap_ue_process_response(benchmark):
    broker, telco, creds, _ = _world()

    def setup():
        ue = UeSap(creds)
        req_t = telco.augment_request(ue.craft_request("t1"))
        _, sealed_u, _ = broker.process_request(req_t, now=1.0)
        return (ue, sealed_u), {}

    benchmark.pedantic(lambda ue, sealed: ue.process_response(sealed),
                       setup=setup, rounds=20)


def test_aka_vector_generation_baseline(benchmark):
    """The HSS-side operation SAP's broker processing replaces."""
    k = bytes(16)
    counter = iter(range(1, 10**9))
    benchmark(lambda: generate_auth_vector(k, next(counter), "00101"))


def test_aka_usim_authenticate_baseline(benchmark):
    k = bytes(16)
    vector = generate_auth_vector(k, 5, "00101")

    def run():
        usim = UsimState(k=k, highest_sqn=4)
        return usim_authenticate(usim, vector.rand, vector.autn, "00101")

    benchmark(run)


def test_sap_message_sizes(benchmark):
    broker, telco, creds, _ = _world()
    ue = UeSap(creds)
    req_u = ue.craft_request("t1")
    req_t = telco.augment_request(req_u)
    sealed_t, sealed_u, _ = benchmark.pedantic(
        broker.process_request, args=(req_t, 1.0), rounds=1, iterations=1)

    print_header("XTRA-SAP - message sizes (bytes)")
    print(f"authReqU  (UE -> bTelco)  : {req_u.wire_size}")
    print(f"authReqT  (bTelco -> B)   : {req_t.wire_size}")
    print(f"authRespT (B -> bTelco)   : {sealed_t.wire_size}")
    print(f"authRespU (B -> UE)       : {sealed_u.wire_size}")
    assert req_u.wire_size < 2000
    assert sealed_u.wire_size < 2000
