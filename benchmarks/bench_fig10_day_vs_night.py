"""FIG10 — T-Mobile day vs night throughput (paper Fig 10, Appendix A).

Two downtown drives with iperf: the day-time run is policed to ~1 Mbps;
the night-time run follows the (high-variance) radio.  The paper reports
day avg 1.03 Mbps (std 0.32, peak 1.75) vs night avg 14.95 Mbps (std
8.94, peak 52.5) — a ~14.5x bimodal gap.
"""

from conftest import print_header

from repro.emulation import run_figure10


def _run(duration: float):
    return run_figure10(duration=duration)


def test_fig10_day_vs_night(benchmark, scale):
    duration = max(120.0, 500.0 * scale)
    result = benchmark.pedantic(_run, args=(duration,), rounds=1,
                                iterations=1)

    print_header(f"FIG 10 - day vs night downtown iperf ({duration:.0f}s)")
    print(f"{'':8s} {'avg Mbps':>9s} {'std':>7s} {'peak':>7s}   paper")
    print(f"{'day':8s} {result.day_avg:9.2f} {result.day_std:7.2f} "
          f"{result.day_peak:7.2f}   1.03 / 0.32 / 1.75")
    print(f"{'night':8s} {result.night_avg:9.2f} {result.night_std:7.2f} "
          f"{result.night_peak:7.2f}   14.95 / 8.94 / 52.5")
    ratio = result.night_avg / result.day_avg
    print(f"night/day ratio: {ratio:.1f}x (paper: 14.5x)")

    # Shape: strongly bimodal; night variance and peaks dwarf day's.
    assert 8.0 < ratio < 25.0
    assert result.night_std > 10 * result.day_std
    assert result.night_peak > 2 * result.night_avg
    assert result.day_peak < 3.5
