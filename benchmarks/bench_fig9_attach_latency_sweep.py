"""FIG9 — impact of attachment latency on post-handover iperf (paper Fig 9).

Factor analysis: MPTCP modified to drop the 500 ms address-worker wait is
run with attachment latency d = 32, 64, 128 ms, plus the unmodified stack,
at night (so the rate limiter doesn't mask the effect).  Each series is the
MPTCP/TCP throughput ratio over the n seconds after each handover,
n = 1..9.

Paper shapes: smaller d is better; the modified stack beats the
unmodified one at small n; without the wait, CellBricks exceeds the TCP
baseline by ~10-30% in the first seconds (slow-start) and converges
toward ~100% by ~9 s.
"""

from conftest import print_header

from repro.emulation import run_figure9


def _run(duration: float):
    return run_figure9(duration=duration)


def test_fig9_attach_latency_sweep(benchmark, scale):
    duration = max(120.0, 240.0 * scale)
    result = benchmark.pedantic(_run, args=(duration,), rounds=1,
                                iterations=1)

    print_header(
        f"FIG 9 - relative perf vs elapsed time since handover "
        f"(night, {duration:.0f}s per variant)")
    header = "elapsed(s) " + "".join(f"{name:>12s}"
                                     for name in result.series)
    print(header)
    for i, window in enumerate(result.windows):
        row = f"{window:>9d}  " + "".join(
            f"{series[i]:>11.1f}%" for series in result.series.values())
        print(row)
    print("\npaper: mod-32ms ~7-8% above mod-64ms at 2s; all converge to "
          "~100% by 9s; unmod. lowest early")

    mod32 = result.series["mod. 32ms"]
    mod128 = result.series["mod. 128ms"]
    unmod = result.series["unmod."]

    # Smaller d wins early.
    assert mod32[1] > mod128[1]
    # The modified stack beats the unmodified one early on.
    assert mod32[0] > unmod[0]
    # Everyone converges toward the TCP baseline by the last window.
    for series in result.series.values():
        assert 80.0 < series[-1] < 125.0
