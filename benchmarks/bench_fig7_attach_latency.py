"""FIG7 — attachment latency breakdown (paper Fig 7, §6.1).

Regenerates the six bars: {Magma baseline, CellBricks} x {local,
us-west-1, us-east-1}, each split into AGW+Brokerd / eNB / UE / Other,
averaged over repeated attach trials.

Paper values (total ms): BL/CB = local ~28/~28, us-west-1 36.85/31.68
(CB 14.0% faster), us-east-1 166.48/98.62 (CB 40.8% faster).
"""

from conftest import print_header

from repro.testbed import run_figure7

PAPER_TOTALS = {
    ("BL", "us-west-1"): 36.85,
    ("CB", "us-west-1"): 31.68,
    ("BL", "us-east-1"): 166.48,
    ("CB", "us-east-1"): 98.62,
}


def _run(trials: int):
    return run_figure7(trials=trials)


def test_fig7_attach_latency(benchmark, scale):
    trials = max(5, int(100 * scale))
    results = benchmark.pedantic(_run, args=(trials,), rounds=1, iterations=1)

    print_header(f"FIG 7 - attachment latency breakdown ({trials} trials)")
    print(f"{'placement':11s} {'arch':4s} {'total':>8s} {'agw+brokerd':>12s} "
          f"{'enb':>6s} {'ue':>6s} {'other':>8s} {'paper':>8s}")
    by_key = {}
    for result in results:
        paper = PAPER_TOTALS.get((result.arch, result.placement))
        by_key[(result.arch, result.placement)] = result.total_ms
        print(f"{result.placement:11s} {result.arch:4s} "
              f"{result.total_ms:8.2f} {result.agw_brokerd_ms:12.2f} "
              f"{result.enb_ms:6.2f} {result.ue_ms:6.2f} "
              f"{result.other_ms:8.2f} "
              f"{paper if paper else float('nan'):8.2f}")

    for placement, paper_gain in (("us-west-1", 14.0), ("us-east-1", 40.8)):
        bl = by_key[("BL", placement)]
        cb = by_key[("CB", placement)]
        gain = (bl - cb) / bl * 100
        print(f"CB vs BL at {placement}: {gain:.1f}% faster "
              f"(paper: {paper_gain}%)")

    # Shape assertions: who wins and by roughly what factor.
    assert by_key[("CB", "us-west-1")] < by_key[("BL", "us-west-1")]
    assert by_key[("CB", "us-east-1")] < 0.7 * by_key[("BL", "us-east-1")]
    assert abs(by_key[("CB", "local")] - by_key[("BL", "local")]) < 3.0
