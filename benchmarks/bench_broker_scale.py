"""XTRA-BROKER-SCALE — the sharded, batched broker auth pipeline.

The paper's §5 position is that brokerd "resembles existing internet
services" and scales out like one.  This benchmark drives one brokerd
from 16 bTelco sites at increasing concurrency and compares the serial
single-shard path against the two-stage pipeline at several shard
counts, on both RATs.  The acceptance shape: with 8 shards and 4 verify
workers, 64 concurrent attaches clear the serial baseline's attaches/sec
by at least 3x at identical deny/replay semantics.
"""

from conftest import bench_scale, print_header

from repro.testbed.broker_scale import run_cell, run_sweep


def _print_cells(report: dict) -> None:
    print(f"{'rat':4s} {'N':>4s} {'mode':9s} {'shards':>6s} {'ok':>4s} "
          f"{'p50 ms':>8s} {'p99 ms':>8s} {'att/s':>8s}")
    for cell in report["cells"]:
        mode = "pipeline" if cell["pipeline"] else "serial"
        print(f"{cell['rat']:4s} {cell['concurrency']:4d} {mode:9s} "
              f"{cell['shards']:6d} {cell['attached']:4d} "
              f"{cell['p50_ms']:8.2f} {cell['p99_ms']:8.2f} "
              f"{cell['attaches_per_sec']:8.1f}")
    for row in report["speedups"]:
        print(f"  {row['rat']} N={row['concurrency']} "
              f"shards={row['shards']}: {row['speedup']:.2f}x")


def test_broker_scale_sweep(benchmark):
    small = bench_scale() < 1.0
    report = benchmark.pedantic(
        run_sweep,
        kwargs=dict(rats=("lte",) if small else ("lte", "5g"),
                    concurrencies=(64,) if small else (16, 64),
                    shard_counts=(8,) if small else (1, 2, 4, 8)),
        rounds=1, iterations=1)
    print_header("XTRA-BROKER-SCALE - concurrent attaches x shard count")
    _print_cells(report)
    for cell in report["cells"]:
        assert cell["failed"] == 0
        assert cell["attached"] == cell["concurrency"]
    full_shards = [row for row in report["speedups"] if row["shards"] >= 8]
    assert full_shards
    for row in full_shards:
        assert row["speedup"] >= 3.0, row


def test_broker_scale_semantics_parity(benchmark):
    """Replay/deny semantics are unchanged by the pipeline: the same
    offered load yields the same attach_ok with zero replay hits and
    zero failures on both paths."""
    def _pair():
        serial = run_cell(32, 1, rat="lte", pipeline=False, sites=8)
        piped = run_cell(32, 8, rat="lte", pipeline=True, sites=8)
        return serial, piped

    serial, piped = benchmark.pedantic(_pair, rounds=1, iterations=1)
    print_header("XTRA-BROKER-SCALE - semantics parity (serial vs pipeline)")
    for cell in (serial, piped):
        mode = "pipeline" if cell.pipeline else "serial"
        print(f"{mode:9s} attach_ok={cell.broker['attach_ok']} "
              f"replay_hits={cell.broker['replay_hits']} "
              f"dup_served={cell.broker['dup_requests_served']}")
    assert serial.broker["attach_ok"] == piped.broker["attach_ok"] == 32
    assert serial.broker["replay_hits"] == piped.broker["replay_hits"] == 0
    assert serial.failed == piped.failed == 0
